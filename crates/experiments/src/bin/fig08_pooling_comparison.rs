//! Figure 8: MSE vs reduction ratio for SA and GNN-pooling baselines.
//!
//! With `--sweep-sa-knobs`, runs the `SaOptions::{stagnation_patience,
//! boost_divisor}` ablation on the same protocol instead (the sweep that
//! chose the defaults recorded on `SaOptions::default`).
use experiments::cli::json_row;
use experiments::pooling_cmp::{run_fig8, run_sa_knob_sweep, Fig8Config};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let sweep = raw.iter().any(|a| a == "--sweep-sa-knobs");
    let help = raw.iter().any(|a| a == "--help" || a == "-h");
    // --help keeps working in sweep mode; only a bare --sweep-sa-knobs run
    // skips the shared handler (which would warn about the flag it doesn't
    // know).
    if !sweep || help {
        let args = experiments::cli::handle_default_args(
            "Figure 8: MSE vs reduction ratio for SA and GNN-pooling baselines \
             (--sweep-sa-knobs runs the stagnation-patience/boost-divisor ablation)",
        );
        let cells = run_fig8(&Fig8Config::default()).expect("figure 8 experiment failed");
        if args.json {
            for c in &cells {
                println!(
                    "{}",
                    json_row(
                        "fig08_pooling_comparison",
                        &[
                            ("method", format!("\"{}\"", c.method.label())),
                            ("reduction_ratio", format!("{:.2}", c.reduction_ratio)),
                            ("mean_mse", format!("{:.5}", c.mean_mse)),
                        ],
                    )
                );
            }
            return;
        }
        println!("# Figure 8: mean landscape MSE by method and node-reduction ratio");
        println!("method\treduction_ratio\tmean_mse");
        for c in &cells {
            println!(
                "{}\t{:.2}\t{:.5}",
                c.method.label(),
                c.reduction_ratio,
                c.mean_mse
            );
        }
        return;
    }
    let json = raw.iter().any(|a| a == "--json");
    let rows = run_sa_knob_sweep(
        &Fig8Config::default(),
        0.3,
        &[5, 15, 30, 60],
        &[2.0, 5.0, 10.0],
    )
    .expect("SA knob sweep failed");
    if json {
        for r in &rows {
            println!(
                "{}",
                json_row(
                    "fig08_sa_knob_sweep",
                    &[
                        ("stagnation_patience", r.stagnation_patience.to_string()),
                        ("boost_divisor", format!("{:.0}", r.boost_divisor)),
                        ("mean_mse", format!("{:.5}", r.mean_mse)),
                        ("mean_iterations", format!("{:.1}", r.mean_iterations)),
                    ],
                )
            );
        }
        return;
    }
    println!("# SA knob ablation (Figure 8 protocol, reduction ratio 0.30)");
    println!("stagnation_patience\tboost_divisor\tmean_mse\tmean_iterations");
    for r in &rows {
        println!(
            "{}\t{:.0}\t{:.5}\t{:.1}",
            r.stagnation_patience, r.boost_divisor, r.mean_mse, r.mean_iterations
        );
    }
}
