//! Figure 2: ideal vs noisy energy landscape of a 13-node graph (Kolkata).
use experiments::cli::json_row;
use experiments::landscapes::{landscape_rows, run_device_landscapes, LandscapeConfig};
use experiments::print_table;
use qsim::devices::kolkata;

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 2: ideal vs noisy energy landscape of a 13-node graph (Kolkata)",
    );
    let config = LandscapeConfig {
        nodes: 13,
        ..Default::default()
    };
    let cmp = run_device_landscapes(&config, &kolkata()).expect("figure 2 experiment failed");
    if args.json {
        println!(
            "{}",
            json_row(
                "fig02_noisy_landscape",
                &[
                    ("nodes", format!("{}", config.nodes)),
                    ("baseline_mse", format!("{:.6}", cmp.baseline_mse)),
                ],
            )
        );
        return;
    }
    println!(
        "# Figure 2: noisy-vs-ideal landscape MSE (baseline graph) = {:.4}",
        cmp.baseline_mse
    );
    print_table(
        "ideal landscape (normalized)",
        &["beta ->"],
        &landscape_rows(&cmp.ideal),
    );
    print_table(
        "noisy landscape (normalized)",
        &["beta ->"],
        &landscape_rows(&cmp.noisy_baseline),
    );
}
