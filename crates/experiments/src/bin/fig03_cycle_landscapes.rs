//! Figure 3: energy landscapes of 7- and 10-node cycle graphs coincide.
use experiments::cli::json_row;
use experiments::landscapes::{landscape_rows, run_fig3};
use experiments::print_table;

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 3: energy landscapes of 7- and 10-node cycle graphs coincide",
    );
    let result = run_fig3(16).expect("figure 3 experiment failed");
    if args.json {
        println!(
            "{}",
            json_row(
                "fig03_cycle_landscapes",
                &[("mse", format!("{:.8}", result.mse))],
            )
        );
        return;
    }
    println!(
        "# Figure 3: MSE between 7-node and 10-node cycle landscapes = {:.2e}",
        result.mse
    );
    print_table(
        "7-node cycle landscape",
        &["beta ->"],
        &landscape_rows(&result.small),
    );
    print_table(
        "10-node cycle landscape",
        &["beta ->"],
        &landscape_rows(&result.large),
    );
}
