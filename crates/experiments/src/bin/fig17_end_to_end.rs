//! Figure 17: end-to-end Red-QAOA vs baseline on larger random graphs.
use experiments::cli::json_row;
use experiments::end_to_end::{run_fig17, Fig17Config};

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 17: end-to-end Red-QAOA vs baseline on larger random graphs",
    );
    let rows = run_fig17(&Fig17Config::default()).expect("figure 17 experiment failed");
    if args.json {
        for r in &rows {
            println!(
                "{}",
                json_row(
                    "fig17_end_to_end",
                    &[
                        ("layers", r.layers.to_string()),
                        ("restarts", r.restarts.to_string()),
                        ("best_ratio", format!("{:.4}", r.best_ratio)),
                        ("average_ratio", format!("{:.4}", r.average_ratio)),
                        ("node_reduction", format!("{:.4}", r.node_reduction)),
                        ("edge_reduction", format!("{:.4}", r.edge_reduction)),
                        ("transfer_error", format!("{:.4}", r.transfer_error)),
                        ("cost_ratio", format!("{:.4}", r.cost_ratio)),
                    ],
                )
            );
        }
        return;
    }
    println!("# Figure 17: Red-QAOA / baseline ratios (best and average across restarts)");
    println!("p\trestarts\tbest_ratio\taverage_ratio\tnode_reduction\tedge_reduction\tcost_ratio");
    for r in &rows {
        println!(
            "{}\t{}\t{:.3}\t{:.3}\t{:.1}%\t{:.1}%\t{:.3}",
            r.layers,
            r.restarts,
            r.best_ratio,
            r.average_ratio,
            r.node_reduction * 100.0,
            r.edge_reduction * 100.0,
            r.cost_ratio
        );
    }
}
