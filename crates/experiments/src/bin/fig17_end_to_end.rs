//! Figure 17: end-to-end Red-QAOA vs baseline on larger random graphs.
use experiments::end_to_end::{run_fig17, Fig17Config};

fn main() {
    experiments::cli::handle_default_args(
        "Figure 17: end-to-end Red-QAOA vs baseline on larger random graphs",
    );
    let rows = run_fig17(&Fig17Config::default()).expect("figure 17 experiment failed");
    println!("# Figure 17: Red-QAOA / baseline ratios (best and average across restarts)");
    println!("p\tbest_ratio\taverage_ratio\tnode_reduction\tedge_reduction");
    for r in &rows {
        println!(
            "{}\t{:.3}\t{:.3}\t{:.1}%\t{:.1}%",
            r.layers,
            r.best_ratio,
            r.average_ratio,
            r.node_reduction * 100.0,
            r.edge_reduction * 100.0
        );
    }
}
