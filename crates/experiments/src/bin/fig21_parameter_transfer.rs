//! Figure 21: Red-QAOA vs parameter transfer across graph families.
use experiments::transfer_cmp::{run_fig21, Fig21Config};

fn main() {
    experiments::cli::handle_default_args(
        "Figure 21: Red-QAOA vs parameter transfer across graph families",
    );
    let rows = run_fig21(&Fig21Config::default()).expect("figure 21 experiment failed");
    println!("# Figure 21: ideal landscape MSE, parameter transfer vs Red-QAOA");
    println!("family\ttransfer_mse\tred_qaoa_mse");
    for r in &rows {
        println!("{}\t{:.4}\t{:.4}", r.family, r.transfer_mse, r.red_qaoa_mse);
    }
}
