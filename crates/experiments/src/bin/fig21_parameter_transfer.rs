//! Figure 21: Red-QAOA vs parameter transfer across graph families.
use experiments::cli::json_row;
use experiments::transfer_cmp::{run_fig21, Fig21Config};

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 21: Red-QAOA vs parameter transfer across graph families",
    );
    let rows = run_fig21(&Fig21Config::default()).expect("figure 21 experiment failed");
    if args.json {
        for r in &rows {
            println!(
                "{}",
                json_row(
                    "fig21_parameter_transfer",
                    &[
                        ("family", format!("\"{}\"", r.family)),
                        ("transfer_mse", format!("{:.6}", r.transfer_mse)),
                        ("red_qaoa_mse", format!("{:.6}", r.red_qaoa_mse)),
                    ],
                )
            );
        }
        return;
    }
    println!("# Figure 21: ideal landscape MSE, parameter transfer vs Red-QAOA");
    println!("family\ttransfer_mse\tred_qaoa_mse");
    for r in &rows {
        println!("{}\t{:.4}\t{:.4}", r.family, r.transfer_mse, r.red_qaoa_mse);
    }
}
