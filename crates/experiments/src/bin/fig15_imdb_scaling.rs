//! Figure 15: IMDb small vs medium reduction ratios.
use experiments::cli::json_row;
use experiments::dataset_eval::{run_imdb_scaling, DatasetEvalConfig};

fn main() {
    let args =
        experiments::cli::handle_default_args("Figure 15: IMDb small vs medium reduction ratios");
    let rows =
        run_imdb_scaling(&DatasetEvalConfig::default()).expect("figure 15 experiment failed");
    if args.json {
        for r in &rows {
            println!(
                "{}",
                json_row(
                    "fig15_imdb_scaling",
                    &[
                        ("split", format!("\"{}\"", r.dataset)),
                        ("graphs", format!("{}", r.graphs)),
                        ("node_reduction", format!("{:.4}", r.node_reduction)),
                        ("edge_reduction", format!("{:.4}", r.edge_reduction)),
                    ],
                )
            );
        }
        return;
    }
    println!("# Figure 15: IMDb reduction ratios by size split");
    println!("split\tgraphs\tnode_reduction\tedge_reduction");
    for r in &rows {
        println!(
            "{}\t{}\t{:.1}%\t{:.1}%",
            r.dataset,
            r.graphs,
            r.node_reduction * 100.0,
            r.edge_reduction * 100.0
        );
    }
}
