//! Figure 13: node and edge reduction ratios for AIDS, IMDb, LINUX (<=10 nodes).
use experiments::cli::json_row;
use experiments::dataset_eval::{run_small_datasets, DatasetEvalConfig};

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 13: node and edge reduction ratios for AIDS, IMDb, LINUX (<=10 nodes)",
    );
    let rows =
        run_small_datasets(&DatasetEvalConfig::default()).expect("figure 13 experiment failed");
    if args.json {
        for r in &rows {
            println!(
                "{}",
                json_row(
                    "fig13_dataset_reduction",
                    &[
                        ("dataset", format!("\"{}\"", r.dataset)),
                        ("graphs", format!("{}", r.graphs)),
                        ("node_reduction", format!("{:.4}", r.node_reduction)),
                        ("edge_reduction", format!("{:.4}", r.edge_reduction)),
                    ],
                )
            );
        }
        return;
    }
    println!("# Figure 13: mean reduction ratios (graphs with up to 10 nodes)");
    println!("dataset\tgraphs\tnode_reduction\tedge_reduction");
    for r in &rows {
        println!(
            "{}\t{}\t{:.1}%\t{:.1}%",
            r.dataset,
            r.graphs,
            r.node_reduction * 100.0,
            r.edge_reduction * 100.0
        );
    }
}
