//! Figure 13: node and edge reduction ratios for AIDS, IMDb, LINUX (<=10 nodes).
use experiments::dataset_eval::{run_small_datasets, DatasetEvalConfig};

fn main() {
    experiments::cli::handle_default_args(
        "Figure 13: node and edge reduction ratios for AIDS, IMDb, LINUX (<=10 nodes)",
    );
    let rows =
        run_small_datasets(&DatasetEvalConfig::default()).expect("figure 13 experiment failed");
    println!("# Figure 13: mean reduction ratios (graphs with up to 10 nodes)");
    println!("dataset\tgraphs\tnode_reduction\tedge_reduction");
    for r in &rows {
        println!(
            "{}\t{}\t{:.1}%\t{:.1}%",
            r.dataset,
            r.graphs,
            r.node_reduction * 100.0,
            r.edge_reduction * 100.0
        );
    }
}
