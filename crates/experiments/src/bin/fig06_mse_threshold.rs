//! Figure 6: landscape MSE vs optimal-point drift for random graphs.
use experiments::cli::json_row;
use experiments::landscapes::run_fig6;
use experiments::DEFAULT_SEED;

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 6: landscape MSE vs optimal-point drift for random graphs",
    );
    let rows = run_fig6(6, 9, 12, DEFAULT_SEED).expect("figure 6 experiment failed");
    if args.json {
        for r in &rows {
            println!(
                "{}",
                json_row(
                    "fig06_mse_threshold",
                    &[
                        ("graph", format!("{}", r.graph_index)),
                        ("mse", format!("{:.6}", r.mse)),
                        ("optimum_distance", format!("{:.6}", r.optimum_distance)),
                    ],
                )
            );
        }
        return;
    }
    println!("# Figure 6: MSE and optimum drift vs a reference landscape");
    println!("graph\tmse\toptimum_distance");
    for r in &rows {
        println!("{}\t{:.4}\t{:.4}", r.graph_index, r.mse, r.optimum_distance);
    }
}
