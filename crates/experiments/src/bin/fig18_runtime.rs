//! Figure 18: Red-QAOA preprocessing overhead and its n log n fit.
use experiments::runtime::{run_fig18, Fig18Config};

fn main() {
    experiments::cli::handle_default_args(
        "Figure 18: Red-QAOA preprocessing overhead and its n log n fit",
    );
    let result = run_fig18(&Fig18Config::default()).expect("figure 18 experiment failed");
    println!("# Figure 18: preprocessing time vs circuit execution time");
    println!("nodes\tpreprocessing_s\tcircuit_execution_s");
    for p in &result.points {
        println!(
            "{}\t{:.4}\t{:.1}",
            p.nodes, p.preprocessing_seconds, p.circuit_execution_seconds
        );
    }
    println!(
        "# fit: {:.3e} * n ln n + {:.3e}  (R^2 = {:.3})",
        result.fit_a, result.fit_b, result.r_squared
    );
}
