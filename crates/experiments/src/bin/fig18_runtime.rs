//! Figure 18: Red-QAOA preprocessing overhead and its n log n fit.
use experiments::cli::json_row;
use experiments::runtime::{run_fig18, Fig18Config};

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 18: Red-QAOA preprocessing overhead and its n log n fit",
    );
    let result = run_fig18(&Fig18Config::default()).expect("figure 18 experiment failed");
    if args.json {
        // Machine-readable exemplar of the shared --json flag: one JSON
        // object per timed size plus one fit record, line-delimited.
        for p in &result.points {
            println!(
                "{}",
                json_row(
                    "fig18_runtime",
                    &[
                        ("nodes", p.nodes.to_string()),
                        ("preprocessing_s", format!("{:.6}", p.preprocessing_seconds)),
                        (
                            "circuit_execution_s",
                            format!("{:.3}", p.circuit_execution_seconds)
                        ),
                    ],
                )
            );
        }
        println!(
            "{}",
            json_row(
                "fig18_runtime_fit",
                &[
                    ("fit_a", format!("{:.6e}", result.fit_a)),
                    ("fit_b", format!("{:.6e}", result.fit_b)),
                    ("r_squared", format!("{:.4}", result.r_squared)),
                ],
            )
        );
        return;
    }
    println!("# Figure 18: preprocessing time vs circuit execution time");
    println!("nodes\tpreprocessing_s\tcircuit_execution_s");
    for p in &result.points {
        println!(
            "{}\t{:.4}\t{:.1}",
            p.nodes, p.preprocessing_seconds, p.circuit_execution_seconds
        );
    }
    println!(
        "# fit: {:.3e} * n ln n + {:.3e}  (R^2 = {:.3})",
        result.fit_a, result.fit_b, result.r_squared
    );
}
