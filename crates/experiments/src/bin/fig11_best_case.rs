//! Figure 11: best-case (10-node) landscapes: ideal / Red-QAOA / baseline.
use experiments::cli::json_row;
use experiments::landscapes::{landscape_rows, run_device_landscapes, LandscapeConfig};
use experiments::print_table;
use qsim::devices::fake_toronto;

fn main() {
    let args = experiments::cli::handle_default_args(
        "Figure 11: best-case (10-node) landscapes: ideal / Red-QAOA / baseline",
    );
    let config = LandscapeConfig {
        nodes: 10,
        ..Default::default()
    };
    let cmp = run_device_landscapes(&config, &fake_toronto()).expect("figure 11 experiment failed");
    if args.json {
        println!(
            "{}",
            json_row(
                "fig11_best_case",
                &[
                    ("nodes", format!("{}", config.nodes)),
                    ("red_qaoa_mse", format!("{:.6}", cmp.reduced_mse)),
                    ("baseline_mse", format!("{:.6}", cmp.baseline_mse)),
                ],
            )
        );
        return;
    }
    println!(
        "# Figure 11: Red-QAOA MSE {:.3} vs baseline MSE {:.3}",
        cmp.reduced_mse, cmp.baseline_mse
    );
    print_table("ideal", &["beta ->"], &landscape_rows(&cmp.ideal));
    print_table(
        "red-qaoa (noisy)",
        &["beta ->"],
        &landscape_rows(&cmp.noisy_reduced),
    );
    print_table(
        "baseline (noisy)",
        &["beta ->"],
        &landscape_rows(&cmp.noisy_baseline),
    );
}
