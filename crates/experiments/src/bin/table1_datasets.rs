//! Table 1: benchmark dataset characteristics.
use experiments::cli::json_row;
use experiments::dataset_eval::{run_table1, run_table1_summaries};
use experiments::DEFAULT_SEED;

fn main() {
    let args = experiments::cli::handle_default_args("Table 1: benchmark dataset characteristics");
    if args.json {
        for s in run_table1_summaries(DEFAULT_SEED) {
            println!(
                "{}",
                json_row(
                    "table1_datasets",
                    &[
                        ("dataset", format!("\"{}\"", s.name)),
                        ("graphs", format!("{}", s.graph_count)),
                        ("min_nodes", format!("{}", s.min_nodes)),
                        ("max_nodes", format!("{}", s.max_nodes)),
                        ("mean_nodes", format!("{:.2}", s.mean_nodes)),
                        ("mean_edges", format!("{:.2}", s.mean_edges)),
                        ("mean_degree", format!("{:.3}", s.mean_average_degree)),
                        ("mean_density", format!("{:.3}", s.mean_density)),
                    ],
                )
            );
        }
        return;
    }
    println!("# Table 1: benchmark graph datasets (synthetic statistical twins)");
    println!("dataset\tgraphs\tnodes\tmean_nodes\tmean_edges\tmean_degree\tmean_density");
    for row in run_table1(DEFAULT_SEED) {
        println!("{row}");
    }
}
