//! Table 1: benchmark dataset characteristics.
use experiments::dataset_eval::run_table1;
use experiments::DEFAULT_SEED;

fn main() {
    experiments::cli::handle_default_args("Table 1: benchmark dataset characteristics");
    println!("# Table 1: benchmark graph datasets (synthetic statistical twins)");
    println!("dataset\tgraphs\tnodes\tmean_nodes\tmean_edges\tmean_degree\tmean_density");
    for row in run_table1(DEFAULT_SEED) {
        println!("{row}");
    }
}
