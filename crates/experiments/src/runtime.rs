//! Figure 18: Red-QAOA preprocessing overhead versus problem size.
//!
//! The reduction (binary search over SA runs) is timed for random graphs of
//! increasing size, an `a·n·log n + b` model is fitted to the measurements,
//! and the overhead is compared against a per-circuit execution-time model
//! extrapolated from published device benchmarks (the paper cites ~4.2 s for
//! a 1-layer QAOA circuit on ibm_sherbrooke at 10 nodes).
//!
//! The timed work runs as [`red_qaoa::engine::ReduceJob`] batches through a
//! single-worker [`red_qaoa::engine::Engine`], and `fig18_runtime` is the
//! exemplar binary for the shared `--json` flag
//! ([`crate::cli::handle_default_args`]).

use graphlib::generators::connected_gnp;
use graphlib::Graph;
use mathkit::polyfit::{fit_n_log_n, r_squared};
use mathkit::rng::{derive_seed, seeded};
use red_qaoa::engine::{Engine, Job, ReduceJob};
use red_qaoa::RedQaoaError;
use std::time::Instant;

/// Configuration of the Figure 18 experiment.
#[derive(Debug, Clone)]
pub struct Fig18Config {
    /// Graph sizes (node counts) to time.
    pub node_counts: Vec<usize>,
    /// Average degree of the random graphs.
    pub average_degree: f64,
    /// Repetitions per size (the pool-batch mean is reported).
    pub repetitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig18Config {
    fn default() -> Self {
        Self {
            node_counts: vec![10, 20, 40, 80, 160, 320],
            average_degree: 4.0,
            repetitions: 3,
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// One measurement of Figure 18.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig18Point {
    /// Number of nodes.
    pub nodes: usize,
    /// Mean preprocessing time per graph in seconds (the repetitions at one
    /// size are reduced as a single `reduce_pool` batch).
    pub preprocessing_seconds: f64,
    /// Modelled per-circuit execution time in seconds (linear extrapolation
    /// of the published 4.2 s at 10 nodes).
    pub circuit_execution_seconds: f64,
}

/// Result of the Figure 18 experiment: the measurements plus the fitted
/// `a·n log n + b` model.
#[derive(Debug, Clone)]
pub struct Fig18Result {
    /// Timed points.
    pub points: Vec<Fig18Point>,
    /// Fitted coefficient `a` of `a·n·ln n + b`.
    pub fit_a: f64,
    /// Fitted intercept `b`.
    pub fit_b: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
}

/// Published-benchmark-based model of the per-circuit execution time
/// (seconds) for an `n`-node, 1-layer QAOA circuit.
pub fn circuit_execution_model(nodes: usize) -> f64 {
    // 4.2 s at 10 nodes, growing linearly with circuit width (queueing,
    // readout, and per-shot latency dominate on hosted devices).
    4.2 * nodes as f64 / 10.0
}

/// Runs the Figure 18 experiment.
///
/// # Errors
///
/// Returns [`RedQaoaError`] if timing produced too few points to fit.
pub fn run_fig18(config: &Fig18Config) -> Result<Fig18Result, RedQaoaError> {
    // One engine for the whole sweep. The timed batches are pinned to one
    // worker so the reported per-graph preprocessing *cost* does not shrink
    // with RED_QAOA_THREADS — this figure measures the paper's per-graph
    // overhead claim, not pool throughput (reduction_smoke records that).
    // Every timed graph is distinct, so the engine's reduction cache never
    // short-circuits a measurement.
    let engine = Engine::builder().threads(1).build()?;
    let mut points = Vec::new();
    for (i, &n) in config.node_counts.iter().enumerate() {
        let p = (config.average_degree / (n.saturating_sub(1)).max(1) as f64).min(1.0);
        let reps = config.repetitions.max(1);
        let jobs: Vec<Job> = (0..reps)
            .map(|rep| {
                let mut rng = seeded(derive_seed(config.seed, (i * 100 + rep) as u64));
                connected_gnp(n, p, &mut rng).map(|graph: Graph| Job::Reduce(ReduceJob::new(graph)))
            })
            .collect::<Result<_, _>>()?;
        // The repetitions at one size run as one engine batch; the per-graph
        // time is the batch mean.
        let start = Instant::now();
        let results = engine.run_batch(&jobs, derive_seed(config.seed, 50_000 + i as u64));
        let elapsed = start.elapsed().as_secs_f64();
        for result in results {
            result?;
        }
        points.push(Fig18Point {
            nodes: n,
            preprocessing_seconds: elapsed / reps as f64,
            circuit_execution_seconds: circuit_execution_model(n),
        });
    }
    let xs: Vec<f64> = points.iter().map(|p| p.nodes as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.preprocessing_seconds).collect();
    let (fit_a, fit_b) = fit_n_log_n(&xs, &ys).map_err(|_| {
        RedQaoaError::EmptyInput("n log n fit needs at least two timed graph sizes")
    })?;
    let predicted: Vec<f64> = xs
        .iter()
        .map(|&x| fit_a * x * x.ln().max(0.0) + fit_b)
        .collect();
    let r2 = r_squared(&ys, &predicted).unwrap_or(0.0);
    Ok(Fig18Result {
        points,
        fit_a,
        fit_b,
        r_squared: r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocessing_is_fast_and_scales_mildly() {
        let config = Fig18Config {
            node_counts: vec![10, 20, 40, 80],
            repetitions: 1,
            ..Default::default()
        };
        let result = run_fig18(&config).unwrap();
        assert_eq!(result.points.len(), 4);
        for point in &result.points {
            // Preprocessing must be far below the modelled circuit execution
            // time — the paper's "negligible overhead" claim.
            assert!(
                point.preprocessing_seconds < point.circuit_execution_seconds,
                "{point:?}"
            );
        }
        // Times should grow with n overall.
        assert!(
            result.points.last().unwrap().preprocessing_seconds
                >= result.points.first().unwrap().preprocessing_seconds
        );
    }

    #[test]
    fn execution_model_is_linear_in_nodes() {
        assert!((circuit_execution_model(10) - 4.2).abs() < 1e-12);
        assert!(circuit_execution_model(65) > circuit_execution_model(20));
    }
}
