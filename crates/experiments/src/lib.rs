//! Reproduction harness for the Red-QAOA evaluation.
//!
//! Every figure and table of the paper's evaluation section maps to a module
//! here and to a binary (`cargo run --release -p experiments --bin figXX`).
//! Each module exposes a `Config` with scaled-down-but-faithful defaults, a
//! `run` function returning structured data, and a `report` helper that
//! prints the same rows/series the paper plots. Absolute values depend on the
//! simulated substrate; the *shape* of each result (who wins, by roughly what
//! factor, where crossovers fall) is what the defaults are tuned to
//! reproduce. EXPERIMENTS.md records paper-vs-measured numbers.
//!
//! Module ↔ figure map:
//!
//! | Module | Figures |
//! |--------|---------|
//! | [`convergence`] | 1, 20 |
//! | [`landscapes`] | 2, 3, 6, 11, 12, 22 |
//! | [`and_correlation`] | 5, 7 |
//! | [`pooling_cmp`] | 8, 19 |
//! | [`sa_effectiveness`] | 9 |
//! | [`noisy_mse`] | 10, 23, 24 |
//! | [`depth_compound`] | 26 |
//! | [`dataset_eval`] | 13, 14, 15, 16, Table 1 |
//! | [`end_to_end`] | 17 |
//! | [`runtime`] | 18 |
//! | [`transfer_cmp`] | 21 |
//! | [`throughput_cmp`] | 25 |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod and_correlation;
pub mod cli;
pub mod convergence;
pub mod dataset_eval;
pub mod depth_compound;
pub mod end_to_end;
pub mod landscapes;
pub mod noisy_mse;
pub mod pooling_cmp;
pub mod runtime;
pub mod sa_effectiveness;
pub mod throughput_cmp;
pub mod transfer_cmp;

/// Default seed shared by all experiment binaries, so a full run of the
/// harness is reproducible end to end.
pub const DEFAULT_SEED: u64 = 0xA5F0_2024;

/// The process-wide [`red_qaoa::engine::Engine`] the experiment modules
/// submit their reduction work to.
///
/// One long-lived engine per process is the session-oriented usage the
/// engine is designed for: modules that need the PR 4 output streams call
/// [`red_qaoa::engine::Engine::reduce_pool`] (bitwise-identical delegation
/// to the low-level pool), while the job-based experiments (`runtime`,
/// `end_to_end`, `throughput_cmp`) share its reduction cache. The engine is
/// built with default options and no pinned thread count, so the ambient
/// thread policy (`RED_QAOA_THREADS` / `with_threads`) stays in charge —
/// which is what the thread-count-invariance tests rely on.
pub fn shared_engine() -> &'static red_qaoa::engine::Engine {
    static ENGINE: std::sync::OnceLock<red_qaoa::engine::Engine> = std::sync::OnceLock::new();
    ENGINE.get_or_init(|| {
        red_qaoa::engine::Engine::builder()
            .build()
            .expect("default engine configuration is valid")
    })
}

/// Prints a TSV header followed by data rows (the common output format of
/// the experiment binaries).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
    println!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_table_does_not_panic() {
        super::print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
    }
}
