//! Figure 17: end-to-end scalability evaluation.
//!
//! The paper optimizes 100 random 30-node graphs with COBYLA restarts at
//! `p = 1, 2, 3` and reports Red-QAOA's best and average results relative to
//! the baseline. Exact 30-qubit simulation is beyond a CPU statevector, so
//! the default configuration uses 14-node graphs (documented in
//! EXPERIMENTS.md); the protocol — same restart budget for both sides,
//! best-of and average-of restarts — is unchanged.

use datasets::generators::random_graphs_with_degree;
use mathkit::rng::derive_seed;
use red_qaoa::engine::{Job, PipelineJob};
use red_qaoa::pipeline::PipelineOptions;
use red_qaoa::reduction::ReductionOptions;
use red_qaoa::RedQaoaError;

/// Configuration of the Figure 17 experiment.
#[derive(Debug, Clone)]
pub struct Fig17Config {
    /// Number of random graphs (the paper uses 100).
    pub graph_count: usize,
    /// Nodes per graph (the paper uses 30; default scaled to 14).
    pub nodes: usize,
    /// Average degree of the random graphs.
    pub average_degree: f64,
    /// QAOA layer counts to evaluate.
    pub layers: Vec<usize>,
    /// Optimizer restarts per layer count (the paper uses 20/50/150).
    pub restarts: Vec<usize>,
    /// Optimizer iterations per restart.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig17Config {
    fn default() -> Self {
        Self {
            graph_count: 6,
            nodes: 14,
            average_degree: 4.0,
            layers: vec![1, 2],
            restarts: vec![3, 4],
            iterations: 50,
            seed: crate::DEFAULT_SEED,
        }
    }
}

/// One bar group of Figure 17: Red-QAOA / baseline ratios for a layer count.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig17Row {
    /// Number of QAOA layers.
    pub layers: usize,
    /// Mean ratio of Red-QAOA's best result to the baseline's best result.
    pub best_ratio: f64,
    /// Mean ratio of Red-QAOA's average-across-restarts result to the
    /// baseline's average result.
    pub average_ratio: f64,
    /// Mean node reduction achieved across the graphs.
    pub node_reduction: f64,
    /// Mean edge reduction achieved across the graphs.
    pub edge_reduction: f64,
}

/// Runs the Figure 17 experiment.
///
/// # Errors
///
/// Returns [`RedQaoaError`] if no graph can be evaluated for a layer count.
pub fn run_fig17(config: &Fig17Config) -> Result<Vec<Fig17Row>, RedQaoaError> {
    let graphs = random_graphs_with_degree(
        config.graph_count,
        config.nodes,
        config.average_degree,
        config.seed,
    );
    // The shared engine serves every layer count: the reduction step of each
    // graph's pipeline is content-addressed, so the p = 2 row reuses the
    // reductions the p = 1 row already annealed (the old reduce_pool-per-row
    // structure re-annealed every graph for every layer count).
    let engine = crate::shared_engine();
    let mut rows = Vec::new();
    for (l_idx, &layers) in config.layers.iter().enumerate() {
        let restarts = *config.restarts.get(l_idx).unwrap_or(&3);
        let options = PipelineOptions {
            layers,
            reduction: ReductionOptions::default(),
            optimize: qaoa::optimize::OptimizeOptions {
                restarts,
                max_iters: config.iterations,
            },
            refine_iters: config.iterations / 2,
        };
        // One batch per layer count; graph `g` optimizes on the substream
        // derived from (batch seed, g), mirroring the old per-graph streams.
        let jobs: Vec<Job> = graphs
            .iter()
            .map(|graph| {
                Job::Pipeline(PipelineJob::new(graph.clone()).with_options(options.clone()))
            })
            .collect();
        let results = engine.run_batch(&jobs, derive_seed(config.seed, 77_000 + l_idx as u64));
        let mut best_ratios = Vec::new();
        let mut average_ratios = Vec::new();
        let mut node_reductions = Vec::new();
        let mut edge_reductions = Vec::new();
        for result in results {
            let Ok(output) = result else {
                continue;
            };
            let outcome = output.as_pipeline().expect("pipeline jobs").clone();
            best_ratios.push(outcome.relative_best().min(1.2));
            if outcome.baseline_average.abs() > f64::EPSILON {
                average_ratios.push(outcome.red_qaoa_average / outcome.baseline_average);
            }
            node_reductions.push(outcome.reduction.node_reduction);
            edge_reductions.push(outcome.reduction.edge_reduction);
        }
        if best_ratios.is_empty() {
            return Err(RedQaoaError::EmptyInput(
                "no graph could be evaluated for a layer count",
            ));
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        rows.push(Fig17Row {
            layers,
            best_ratio: mean(&best_ratios),
            average_ratio: mean(&average_ratios),
            node_reduction: mean(&node_reductions),
            edge_reduction: mean(&edge_reductions),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_qaoa_reaches_high_fraction_of_baseline() {
        let config = Fig17Config {
            graph_count: 3,
            nodes: 10,
            layers: vec![1],
            restarts: vec![2],
            iterations: 40,
            ..Default::default()
        };
        let rows = run_fig17(&config).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        // The paper reports ≥ 0.97 average and ≈ 1.0 best; allow slack for the
        // scaled-down protocol.
        assert!(row.best_ratio > 0.9, "{row:?}");
        assert!(row.average_ratio > 0.85, "{row:?}");
        assert!(row.node_reduction > 0.0, "{row:?}");
        assert!(row.edge_reduction >= row.node_reduction * 0.5, "{row:?}");
    }
}
