//! Figure 17: end-to-end scalability evaluation.
//!
//! The paper optimizes 100 random 30-node graphs with COBYLA restarts at
//! `p = 1, 2, 3` (20/50/100 restarts by depth) and reports Red-QAOA's best
//! and average results relative to the baseline — `baseline_fun` vs
//! `red_qaoa_fun` in the reference `end_to_end.py`: optimize the reduced
//! graph, then *re-score the found parameters on the full graph*. That exact
//! protocol is the engine's [`red_qaoa::engine::OptimizeJob`], which this
//! experiment batches per layer count. Exact 30-qubit simulation is beyond a
//! CPU statevector, so the default configuration uses 14-node graphs
//! (documented in EXPERIMENTS.md) and [`Fig17Config::paper`] scales to
//! 16-node graphs with the full restart schedule.

use datasets::generators::random_graphs_with_degree;
use mathkit::rng::derive_seed;
use qaoa::optimize::{paper_restarts, OptimizerConfig};
use red_qaoa::engine::{Job, OptimizeJob};
use red_qaoa::RedQaoaError;

/// Configuration of the Figure 17 experiment.
#[derive(Debug, Clone)]
pub struct Fig17Config {
    /// Number of random graphs (the paper uses 100).
    pub graph_count: usize,
    /// Nodes per graph (the paper uses 30; default scaled to 14).
    pub nodes: usize,
    /// Average degree of the random graphs.
    pub average_degree: f64,
    /// QAOA layer counts to evaluate.
    pub layers: Vec<usize>,
    /// Optimizer restarts per layer count. Layer counts beyond this list
    /// follow the paper's schedule ([`paper_restarts`]: 20/50/100 by `p`),
    /// so an empty list reproduces the reference protocol exactly.
    pub restarts: Vec<usize>,
    /// Optimizer iterations per restart.
    pub iterations: usize,
    /// Which gradient-free optimizer drives both sessions.
    pub optimizer: OptimizerConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig17Config {
    fn default() -> Self {
        Self {
            graph_count: 6,
            nodes: 14,
            average_degree: 4.0,
            layers: vec![1, 2],
            restarts: vec![3, 4],
            iterations: 50,
            optimizer: OptimizerConfig::default(),
            seed: crate::DEFAULT_SEED,
        }
    }
}

impl Fig17Config {
    /// The paper-faithful protocol at the largest node count exact CPU
    /// simulation affords: `p = 1, 2, 3` with the full 20/50/100 restart
    /// schedule on 16-node graphs (beyond the reference implementation's
    /// exact-simulation sizes). Expensive — minutes, not seconds; the
    /// default configuration is the CI-sized variant.
    pub fn paper() -> Self {
        Self {
            graph_count: 10,
            nodes: 16,
            layers: vec![1, 2, 3],
            restarts: Vec::new(),
            iterations: 100,
            ..Self::default()
        }
    }
}

/// One bar group of Figure 17: Red-QAOA / baseline ratios for a layer count.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig17Row {
    /// Number of QAOA layers.
    pub layers: usize,
    /// Restarts both sessions ran with.
    pub restarts: usize,
    /// Mean ratio of Red-QAOA's best transferred result to the baseline's
    /// best result (`red_qaoa_fun / baseline_fun`).
    pub best_ratio: f64,
    /// Mean ratio of Red-QAOA's average-across-restarts transferred result
    /// to the baseline's average result.
    pub average_ratio: f64,
    /// Mean node reduction achieved across the graphs.
    pub node_reduction: f64,
    /// Mean edge reduction achieved across the graphs.
    pub edge_reduction: f64,
    /// Mean parameter-transfer error (relative shortfall vs the baseline
    /// best, clamped at 0).
    pub transfer_error: f64,
    /// Mean full-graph-equivalent cost of the Red-QAOA path relative to the
    /// baseline (below 1.0: the reduced session was cheaper end to end).
    pub cost_ratio: f64,
}

/// Runs the Figure 17 experiment on [`red_qaoa::engine::OptimizeJob`]
/// batches: one batch per layer count, each graph a baseline-vs-reduced
/// session on its own derived substream.
///
/// # Errors
///
/// Returns [`RedQaoaError`] if no graph can be evaluated for a layer count.
pub fn run_fig17(config: &Fig17Config) -> Result<Vec<Fig17Row>, RedQaoaError> {
    let graphs = random_graphs_with_degree(
        config.graph_count,
        config.nodes,
        config.average_degree,
        config.seed,
    );
    // The shared engine serves every layer count: the reduction step of each
    // graph's session is content-addressed, so the p = 2 row reuses the
    // reductions the p = 1 row already annealed.
    let engine = crate::shared_engine();
    let mut rows = Vec::new();
    for (l_idx, &layers) in config.layers.iter().enumerate() {
        let restarts = config
            .restarts
            .get(l_idx)
            .copied()
            .unwrap_or_else(|| paper_restarts(layers));
        let jobs: Vec<Job> = graphs
            .iter()
            .map(|graph| {
                Job::Optimize(
                    OptimizeJob::new(graph.clone())
                        .with_layers(layers)
                        .with_optimizer(config.optimizer.clone())
                        .with_restarts(restarts)
                        .with_max_iters(config.iterations),
                )
            })
            .collect();
        let results = engine.run_batch(&jobs, derive_seed(config.seed, 77_000 + l_idx as u64));
        let mut best_ratios = Vec::new();
        let mut average_ratios = Vec::new();
        let mut node_reductions = Vec::new();
        let mut edge_reductions = Vec::new();
        let mut transfer_errors = Vec::new();
        let mut cost_ratios = Vec::new();
        for result in results {
            let Ok(output) = result else {
                continue;
            };
            let report = output.as_optimize().expect("optimize jobs");
            best_ratios.push(report.relative_best().min(1.2));
            if report.transfer.native_average.abs() > f64::EPSILON {
                average_ratios
                    .push(report.transfer.transferred_average / report.transfer.native_average);
            }
            node_reductions.push(report.reduction.node_reduction);
            edge_reductions.push(report.reduction.edge_reduction);
            transfer_errors.push(report.transfer.transfer_error);
            cost_ratios.push(report.cost_ratio);
        }
        if best_ratios.is_empty() {
            return Err(RedQaoaError::EmptyInput(
                "no graph could be evaluated for a layer count",
            ));
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        rows.push(Fig17Row {
            layers,
            restarts,
            best_ratio: mean(&best_ratios),
            average_ratio: mean(&average_ratios),
            node_reduction: mean(&node_reductions),
            edge_reduction: mean(&edge_reductions),
            transfer_error: mean(&transfer_errors),
            cost_ratio: mean(&cost_ratios),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_qaoa_reaches_high_fraction_of_baseline() {
        let config = Fig17Config {
            graph_count: 3,
            nodes: 10,
            layers: vec![1],
            restarts: vec![2],
            iterations: 40,
            ..Default::default()
        };
        let rows = run_fig17(&config).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.restarts, 2);
        // The paper reports ≥ 0.97 average and ≈ 1.0 best; allow slack for the
        // scaled-down protocol (and no refinement step: this is the raw
        // transferred value).
        assert!(row.best_ratio > 0.9, "{row:?}");
        assert!(row.average_ratio > 0.85, "{row:?}");
        assert!(row.node_reduction > 0.0, "{row:?}");
        assert!(row.edge_reduction >= row.node_reduction * 0.5, "{row:?}");
        assert!((0.0..=1.0).contains(&row.transfer_error), "{row:?}");
        // Optimizing on the reduced statevector must be cheaper end to end.
        assert!(row.cost_ratio < 1.0, "{row:?}");
    }

    #[test]
    fn unlisted_layer_counts_follow_the_paper_schedule() {
        let config = Fig17Config {
            graph_count: 1,
            nodes: 8,
            layers: vec![1],
            restarts: Vec::new(), // empty: paper schedule (20 at p = 1)
            iterations: 15,
            ..Default::default()
        };
        let rows = run_fig17(&config).unwrap();
        assert_eq!(rows[0].restarts, 20);
    }
}
