//! Small dense-matrix helpers.
//!
//! Only the routines needed by the rest of the workspace are provided:
//! a row-major [`Matrix`] type, Gaussian elimination with partial pivoting
//! (used by the polynomial fitter), and power iteration (used by eigenvector
//! centrality in `graphlib`).

use crate::MathError;

/// A dense, row-major `f64` matrix.
///
/// # Example
///
/// ```
/// use mathkit::linalg::Matrix;
///
/// let m = Matrix::identity(3);
/// assert_eq!(m.get(1, 1), 1.0);
/// assert_eq!(m.get(0, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidParameter`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::InvalidParameter(
                "data length must equal rows * cols",
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::LengthMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::LengthMismatch {
                left: self.cols,
                right: v.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0;
            for c in 0..self.cols {
                acc += self.get(r, c) * v[c];
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::LengthMismatch`] if the inner dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::LengthMismatch {
                left: self.cols,
                right: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out.data[r * rhs.cols + c] += a * rhs.get(k, c);
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }
}

/// Solves the linear system `a x = b` by Gaussian elimination with partial
/// pivoting.
///
/// # Errors
///
/// Returns [`MathError::LengthMismatch`] if the shapes are inconsistent and
/// [`MathError::SingularMatrix`] if the matrix is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MathError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MathError::LengthMismatch {
            left: a.rows(),
            right: a.cols(),
        });
    }
    if b.len() != n {
        return Err(MathError::LengthMismatch {
            left: n,
            right: b.len(),
        });
    }
    // Build augmented matrix.
    let mut m = vec![vec![0.0; n + 1]; n];
    for r in 0..n {
        for c in 0..n {
            m[r][c] = a.get(r, c);
        }
        m[r][n] = b[r];
    }
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if m[r][col].abs() > m[pivot][col].abs() {
                pivot = r;
            }
        }
        if m[pivot][col].abs() < 1e-12 {
            return Err(MathError::SingularMatrix);
        }
        m.swap(col, pivot);
        // Eliminate below.
        for r in (col + 1)..n {
            let factor = m[r][col] / m[col][col];
            for c in col..=n {
                m[r][c] -= factor * m[col][c];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = m[r][n];
        for c in (r + 1)..n {
            acc -= m[r][c] * x[c];
        }
        x[r] = acc / m[r][r];
    }
    Ok(x)
}

/// Result of [`power_iteration`]: the dominant eigenvalue and its eigenvector.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigenpair {
    /// Dominant eigenvalue estimate.
    pub value: f64,
    /// Corresponding unit eigenvector.
    pub vector: Vec<f64>,
}

/// Estimates the dominant eigenpair of a square matrix by power iteration.
///
/// Used for eigenvector centrality, where the matrix is the (non-negative)
/// adjacency matrix of a connected graph, so convergence is well behaved.
///
/// # Errors
///
/// Returns [`MathError::InvalidParameter`] if the matrix is not square or is
/// empty, or if `max_iters == 0`.
pub fn power_iteration(a: &Matrix, max_iters: usize, tol: f64) -> Result<Eigenpair, MathError> {
    let n = a.rows();
    if n == 0 || a.cols() != n {
        return Err(MathError::InvalidParameter(
            "power iteration requires a non-empty square matrix",
        ));
    }
    if max_iters == 0 {
        return Err(MathError::InvalidParameter("max_iters must be positive"));
    }
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut value = 0.0;
    for _ in 0..max_iters {
        let w = a.mul_vec(&v)?;
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-15 {
            // Matrix annihilates the iterate (e.g. empty graph); return zeros.
            return Ok(Eigenpair {
                value: 0.0,
                vector: vec![0.0; n],
            });
        }
        let next: Vec<f64> = w.iter().map(|x| x / norm).collect();
        let new_value = norm;
        let delta: f64 = next
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        v = next;
        value = new_value;
        if delta < tol {
            break;
        }
    }
    Ok(Eigenpair { value, vector: v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        assert_eq!(solve(&a, &b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, -1.0]).unwrap();
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(MathError::SingularMatrix));
    }

    #[test]
    fn matrix_vector_product() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn matrix_matrix_product_and_transpose() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c.get(0, 0), 2.0);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 4.0);
        assert_eq!(c.get(1, 1), 3.0);
        let t = a.transpose();
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.get(1, 0), 2.0);
    }

    #[test]
    fn from_rows_validates_length() {
        assert!(Matrix::from_rows(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn power_iteration_on_symmetric_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1; dominant eigenvector (1,1)/sqrt(2).
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let eig = power_iteration(&a, 500, 1e-12).unwrap();
        assert!((eig.value - 3.0).abs() < 1e-6);
        assert!((eig.vector[0] - eig.vector[1]).abs() < 1e-6);
    }

    #[test]
    fn power_iteration_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let eig = power_iteration(&a, 10, 1e-9).unwrap();
        assert_eq!(eig.value, 0.0);
    }

    #[test]
    fn power_iteration_rejects_nonsquare() {
        let a = Matrix::zeros(2, 3);
        assert!(power_iteration(&a, 10, 1e-9).is_err());
    }
}
