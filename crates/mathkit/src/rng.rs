//! Deterministic random-number-generator helpers.
//!
//! Every experiment in the repository takes an explicit `u64` seed so that
//! figures can be regenerated bit-for-bit. This module centralizes the
//! construction of seeded generators and a few convenience samplers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a fast, seeded RNG.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = mathkit::rng::seeded(42);
/// let mut b = mathkit::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Experiments that need several independent streams (one per graph, one per
/// restart, ...) use this to avoid accidental stream correlation while staying
/// reproducible. The mixing function is SplitMix64.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a uniform value in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "uniform requires lo < hi");
    rng.gen_range(lo..hi)
}

/// Samples `n` uniform values in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_vec<R: Rng>(rng: &mut R, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| uniform(rng, lo, hi)).collect()
}

/// Draws a standard normal sample using the Box–Muller transform.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid log(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Chooses `k` distinct indices from `0..n` (Fisher–Yates prefix).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn choose_indices<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot choose more indices than available");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeded_rngs_are_reproducible() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_seeds_differ_by_stream() {
        let s0 = derive_seed(1, 0);
        let s1 = derive_seed(1, 1);
        let s2 = derive_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded(3);
        for _ in 0..1000 {
            let x = uniform(&mut rng, -1.0, 2.0);
            assert!((-1.0..2.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "uniform requires lo < hi")]
    fn uniform_panics_on_bad_range() {
        let mut rng = seeded(3);
        let _ = uniform(&mut rng, 1.0, 1.0);
    }

    #[test]
    fn normal_samples_have_reasonable_moments() {
        let mut rng = seeded(11);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance was {var}");
    }

    #[test]
    fn choose_indices_are_distinct_and_in_range() {
        let mut rng = seeded(5);
        let picked = choose_indices(&mut rng, 20, 8);
        assert_eq!(picked.len(), 8);
        let set: HashSet<_> = picked.iter().copied().collect();
        assert_eq!(set.len(), 8);
        assert!(picked.iter().all(|&i| i < 20));
    }

    #[test]
    fn choose_all_indices_is_permutation() {
        let mut rng = seeded(5);
        let picked = choose_indices(&mut rng, 6, 6);
        let set: HashSet<_> = picked.iter().copied().collect();
        assert_eq!(set.len(), 6);
    }
}
