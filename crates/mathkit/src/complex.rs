//! A minimal double-precision complex number type.
//!
//! The quantum simulators in the `qsim` crate only need a small, fast complex
//! type; implementing it here avoids an external dependency and keeps the
//! numeric core of the project self-contained.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use mathkit::Complex64;
///
/// let i = Complex64::i();
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline]
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Builds a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{i theta}` (a point on the unit circle).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |acc, z| acc + z)
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn addition_and_subtraction() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(0.3, -0.7);
        let b = Complex64::new(1.2, 2.5);
        let c = a * b / b;
        assert!((c - a).norm() < EPS);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert!((z.norm() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.norm() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * 0.39;
            assert!((Complex64::cis(theta).norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn sum_of_complex_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
