//! Least-squares polynomial fitting.
//!
//! The paper fits a 6th-degree polynomial to the MSE-vs-AND-ratio scatter
//! (Figure 5) and an `n log n` model to the preprocessing-runtime data
//! (Figure 18). Both fits reduce to linear least squares, solved here through
//! the normal equations and Gaussian elimination from [`crate::linalg`].

use crate::linalg::{solve, Matrix};
use crate::MathError;

/// A polynomial with coefficients stored from the constant term upwards
/// (`coeffs[k]` multiplies `x^k`).
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    /// Coefficients, lowest degree first.
    pub coeffs: Vec<f64>,
}

impl Polynomial {
    /// Evaluates the polynomial at `x` using Horner's method.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Degree of the polynomial (number of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }
}

/// Fits a polynomial of the given degree to `(x, y)` samples by least squares.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input,
/// [`MathError::LengthMismatch`] if `xs` and `ys` differ in length,
/// [`MathError::InvalidParameter`] if there are fewer samples than
/// coefficients, and [`MathError::SingularMatrix`] if the normal equations are
/// degenerate (e.g. all `x` identical).
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Polynomial, MathError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(MathError::EmptyInput);
    }
    if xs.len() != ys.len() {
        return Err(MathError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let k = degree + 1;
    if xs.len() < k {
        return Err(MathError::InvalidParameter(
            "need at least degree+1 samples for a polynomial fit",
        ));
    }
    // Design matrix V with V[i][j] = x_i^j, normal equations (V^T V) c = V^T y.
    let mut vtv = Matrix::zeros(k, k);
    let mut vty = vec![0.0; k];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut powers = vec![1.0; k];
        for j in 1..k {
            powers[j] = powers[j - 1] * x;
        }
        for r in 0..k {
            vty[r] += powers[r] * y;
            for c in 0..k {
                vtv.set(r, c, vtv.get(r, c) + powers[r] * powers[c]);
            }
        }
    }
    let coeffs = solve(&vtv, &vty)?;
    Ok(Polynomial { coeffs })
}

/// Fits the two-parameter model `y ≈ a * x * ln(x) + b`.
///
/// This is the asymptotic model the paper uses for Red-QAOA's preprocessing
/// overhead in Figure 18. Points with `x <= 1` contribute `x ln x = 0`.
///
/// # Errors
///
/// Same error conditions as [`polyfit`].
pub fn fit_n_log_n(xs: &[f64], ys: &[f64]) -> Result<(f64, f64), MathError> {
    if xs.is_empty() || ys.is_empty() {
        return Err(MathError::EmptyInput);
    }
    if xs.len() != ys.len() {
        return Err(MathError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(MathError::InvalidParameter(
            "need at least two samples to fit n log n",
        ));
    }
    // Linear regression of y on t = x ln x.
    let ts: Vec<f64> = xs
        .iter()
        .map(|&x| if x > 1.0 { x * x.ln() } else { 0.0 })
        .collect();
    let n = ts.len() as f64;
    let st: f64 = ts.iter().sum();
    let sy: f64 = ys.iter().sum();
    let stt: f64 = ts.iter().map(|t| t * t).sum();
    let sty: f64 = ts.iter().zip(ys).map(|(t, y)| t * y).sum();
    let denom = n * stt - st * st;
    if denom.abs() < 1e-12 {
        return Err(MathError::SingularMatrix);
    }
    let a = (n * sty - st * sy) / denom;
    let b = (sy - a * st) / n;
    Ok((a, b))
}

/// Coefficient of determination (R²) of predictions against observations.
///
/// # Errors
///
/// Same error conditions as [`crate::stats::mse`]; returns
/// [`MathError::InvalidParameter`] when the observations are constant.
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> Result<f64, MathError> {
    if observed.is_empty() || predicted.is_empty() {
        return Err(MathError::EmptyInput);
    }
    if observed.len() != predicted.len() {
        return Err(MathError::LengthMismatch {
            left: observed.len(),
            right: predicted.len(),
        });
    }
    let mean_obs = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed
        .iter()
        .map(|y| (y - mean_obs) * (y - mean_obs))
        .sum();
    if ss_tot < 1e-15 {
        return Err(MathError::InvalidParameter(
            "r_squared requires non-constant observations",
        ));
    }
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(y, f)| (y - f) * (y - f))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_quadratic() {
        let xs: Vec<f64> = (0..10).map(|k| k as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 2.0 * x + 0.5 * x * x).collect();
        let p = polyfit(&xs, &ys, 2).unwrap();
        assert!((p.coeffs[0] - 3.0).abs() < 1e-8);
        assert!((p.coeffs[1] + 2.0).abs() < 1e-8);
        assert!((p.coeffs[2] - 0.5).abs() < 1e-8);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn eval_uses_horner_correctly() {
        let p = Polynomial {
            coeffs: vec![1.0, 0.0, 2.0],
        };
        assert_eq!(p.eval(3.0), 1.0 + 2.0 * 9.0);
    }

    #[test]
    fn rejects_insufficient_samples() {
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 5).is_err());
    }

    #[test]
    fn rejects_mismatched_inputs() {
        assert!(polyfit(&[1.0, 2.0], &[1.0], 1).is_err());
    }

    #[test]
    fn sixth_degree_fit_runs_on_noiseless_data() {
        let xs: Vec<f64> = (0..40).map(|k| 0.2 + 0.02 * k as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (1.0 - x).powi(6)).collect();
        let p = polyfit(&xs, &ys, 6).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((p.eval(x) - y).abs() < 1e-5);
        }
    }

    #[test]
    fn n_log_n_fit_recovers_coefficients() {
        let xs: Vec<f64> = (1..=50).map(|k| (k * 20) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 0.003 * x * x.ln() + 2.0).collect();
        let (a, b) = fit_n_log_n(&xs, &ys).unwrap();
        assert!((a - 0.003).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-6);
    }

    #[test]
    fn r_squared_perfect_fit_is_one() {
        let obs = [1.0, 2.0, 3.0];
        assert!((r_squared(&obs, &obs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_rejects_constant_observations() {
        assert!(r_squared(&[1.0, 1.0], &[1.0, 1.0]).is_err());
    }
}
