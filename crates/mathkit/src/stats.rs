//! Descriptive statistics and the landscape-similarity metric of the paper.
//!
//! The central quantity is [`mse`], Equation 12 of the Red-QAOA paper: the
//! mean squared error between two (normalized) energy landscapes sampled at
//! the same parameter points. [`normalize`] implements the min–max
//! normalization applied to each landscape before comparison.

use crate::MathError;

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mathkit::MathError> {
/// assert_eq!(mathkit::stats::mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok(()) }
/// ```
pub fn mean(xs: &[f64]) -> Result<f64, MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance of a slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
pub fn variance(xs: &[f64]) -> Result<f64, MathError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation of a slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
pub fn std_dev(xs: &[f64]) -> Result<f64, MathError> {
    variance(xs).map(f64::sqrt)
}

/// Mean squared error between two equally-sized samples (Equation 12).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if the slices are empty and
/// [`MathError::LengthMismatch`] if their lengths differ.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), mathkit::MathError> {
/// let e = mathkit::stats::mse(&[1.0, 0.0], &[0.0, 0.0])?;
/// assert_eq!(e, 0.5);
/// # Ok(()) }
/// ```
pub fn mse(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    if a.is_empty() || b.is_empty() {
        return Err(MathError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(MathError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    Ok(sum / a.len() as f64)
}

/// Root mean squared error between two equally-sized samples.
///
/// # Errors
///
/// Same error conditions as [`mse`].
pub fn rmse(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    mse(a, b).map(f64::sqrt)
}

/// Minimum and maximum of a slice.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
pub fn min_max(xs: &[f64]) -> Result<(f64, f64), MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Ok((lo, hi))
}

/// Index of the minimum element (ties resolved to the first occurrence).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
pub fn argmin(xs: &[f64]) -> Result<usize, MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x < xs[best] {
            best = i;
        }
    }
    Ok(best)
}

/// Index of the maximum element (ties resolved to the first occurrence).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
pub fn argmax(xs: &[f64]) -> Result<usize, MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    Ok(best)
}

/// Min–max normalizes a sample into `[0, 1]`.
///
/// If the sample is constant, every value maps to `0.0` (this mirrors the
/// reference implementation, which treats a flat landscape as trivially
/// normalized).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
pub fn normalize(xs: &[f64]) -> Result<Vec<f64>, MathError> {
    let (lo, hi) = min_max(xs)?;
    let span = hi - lo;
    if span <= f64::EPSILON {
        return Ok(vec![0.0; xs.len()]);
    }
    Ok(xs.iter().map(|x| (x - lo) / span).collect())
}

/// MSE between the min–max normalized versions of two samples.
///
/// This is the quantity plotted throughout the paper's evaluation: both
/// landscapes are normalized to `[0, 1]` before the error is computed so that
/// graphs with different energy ranges are comparable.
///
/// # Errors
///
/// Same error conditions as [`mse`].
pub fn normalized_mse(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    let na = normalize(a)?;
    let nb = normalize(b)?;
    mse(&na, &nb)
}

/// Linearly interpolated quantile of a sample (`q` in `[0, 1]`).
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] for empty input and
/// [`MathError::InvalidParameter`] if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, MathError> {
    if xs.is_empty() {
        return Err(MathError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MathError::InvalidParameter("quantile must be in [0, 1]"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median of a sample.
///
/// # Errors
///
/// Returns [`MathError::EmptyInput`] if `xs` is empty.
pub fn median(xs: &[f64]) -> Result<f64, MathError> {
    quantile(xs, 0.5)
}

/// Five-number summary used to draw box plots (Figure 19).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPlot {
    /// Minimum observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
}

impl BoxPlot {
    /// Computes the five-number summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] if `xs` is empty.
    pub fn from_samples(xs: &[f64]) -> Result<Self, MathError> {
        let (min, max) = min_max(xs)?;
        Ok(Self {
            min,
            q1: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            q3: quantile(xs, 0.75)?,
            max,
        })
    }

    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Pearson correlation coefficient between two samples.
///
/// # Errors
///
/// Same error conditions as [`mse`]; additionally returns
/// [`MathError::InvalidParameter`] if either sample has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, MathError> {
    if a.is_empty() || b.is_empty() {
        return Err(MathError::EmptyInput);
    }
    if a.len() != b.len() {
        return Err(MathError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let ma = mean(a)?;
    let mb = mean(b)?;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= f64::EPSILON || vb <= f64::EPSILON {
        return Err(MathError::InvalidParameter(
            "pearson requires non-constant samples",
        ));
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// A simple histogram with uniformly sized bins over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge of the first bin.
    pub lo: f64,
    /// Inclusive upper edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` uniform bins spanning the data range.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::EmptyInput`] if `xs` is empty, or
    /// [`MathError::InvalidParameter`] if `bins == 0`.
    pub fn new(xs: &[f64], bins: usize) -> Result<Self, MathError> {
        if bins == 0 {
            return Err(MathError::InvalidParameter("bins must be positive"));
        }
        let (lo, hi) = min_max(xs)?;
        let mut counts = vec![0usize; bins];
        let span = (hi - lo).max(f64::EPSILON);
        for &x in xs {
            let mut idx = ((x - lo) / span * bins as f64) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        Ok(Self { lo, hi, counts })
    }

    /// Per-bin relative frequencies (fractions summing to 1).
    pub fn frequencies(&self) -> Vec<f64> {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Center of the `i`-th bin.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert_eq!(variance(&xs).unwrap(), 4.0);
        assert_eq!(std_dev(&xs).unwrap(), 2.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(MathError::EmptyInput));
        assert_eq!(mse(&[], &[]), Err(MathError::EmptyInput));
        assert_eq!(normalize(&[]), Err(MathError::EmptyInput));
    }

    #[test]
    fn mse_mismatched_lengths_error() {
        assert_eq!(
            mse(&[1.0], &[1.0, 2.0]),
            Err(MathError::LengthMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn mse_identical_is_zero() {
        let xs = [0.1, 0.7, -2.3];
        assert_eq!(mse(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let xs = [-2.0, 0.0, 6.0];
        let n = normalize(&xs).unwrap();
        assert_eq!(n, vec![0.0, 0.25, 1.0]);
    }

    #[test]
    fn normalize_constant_input_is_zero() {
        let n = normalize(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(n, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn normalized_mse_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| 10.0 * x + 5.0).collect();
        let err = normalized_mse(&a, &b).unwrap();
        assert!(err < 1e-12);
    }

    #[test]
    fn quantiles_and_boxplot() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&xs).unwrap(), 3.0);
        let bp = BoxPlot::from_samples(&xs).unwrap();
        assert_eq!(bp.min, 1.0);
        assert_eq!(bp.max, 5.0);
        assert_eq!(bp.median, 3.0);
        assert_eq!(bp.q1, 2.0);
        assert_eq!(bp.q3, 4.0);
        assert_eq!(bp.iqr(), 2.0);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile(&[1.0], 1.5).is_err());
    }

    #[test]
    fn argmin_argmax() {
        let xs = [3.0, -1.0, 7.0, -1.0];
        assert_eq!(argmin(&xs).unwrap(), 1);
        assert_eq!(argmax(&xs).unwrap(), 2);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_constant() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn histogram_counts_and_frequencies() {
        let xs = [0.0, 0.1, 0.2, 0.9, 1.0];
        let h = Histogram::new(&xs, 2).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), xs.len());
        assert_eq!(h.counts, vec![3, 2]);
        let freqs = h.frequencies();
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(h.bin_center(0) < h.bin_center(1));
    }

    #[test]
    fn histogram_rejects_zero_bins() {
        assert!(Histogram::new(&[1.0], 0).is_err());
    }
}
