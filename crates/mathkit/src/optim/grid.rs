//! Exhaustive grid search over a rectangular parameter domain.
//!
//! The paper's landscape experiments sweep a `width × width` grid over
//! `(γ, β)`; the same machinery doubles as a (coarse) global optimizer for
//! the end-to-end comparison of surrogate graphs.

use super::{Objective, OptimResult};

/// Uniform grid search over an axis-aligned box.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearch {
    /// Inclusive lower bounds, one per dimension.
    pub lower: Vec<f64>,
    /// Exclusive upper bounds, one per dimension.
    pub upper: Vec<f64>,
    /// Number of samples per dimension.
    pub points_per_dim: usize,
}

impl GridSearch {
    /// Creates a grid search over the box `[lower, upper)` with
    /// `points_per_dim` samples along each axis.
    ///
    /// # Panics
    ///
    /// Panics if the bounds have different lengths, any lower bound is not
    /// strictly below its upper bound, or `points_per_dim == 0`.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>, points_per_dim: usize) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound dimension mismatch");
        assert!(points_per_dim > 0, "points_per_dim must be positive");
        for (lo, hi) in lower.iter().zip(&upper) {
            assert!(lo < hi, "lower bound must be below upper bound");
        }
        Self {
            lower,
            upper,
            points_per_dim,
        }
    }

    /// Total number of grid points.
    pub fn total_points(&self) -> usize {
        self.points_per_dim.pow(self.lower.len() as u32)
    }

    /// Returns the grid point with the given flattened index.
    ///
    /// Index order is row-major with the first dimension varying slowest.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_points()`.
    pub fn point(&self, index: usize) -> Vec<f64> {
        assert!(index < self.total_points(), "grid index out of range");
        let d = self.lower.len();
        let mut coords = vec![0.0; d];
        let mut rest = index;
        for dim in (0..d).rev() {
            let i = rest % self.points_per_dim;
            rest /= self.points_per_dim;
            let step = (self.upper[dim] - self.lower[dim]) / self.points_per_dim as f64;
            coords[dim] = self.lower[dim] + step * i as f64;
        }
        coords
    }

    /// Evaluates the objective at every grid point and returns the minimizer.
    ///
    /// # Panics
    ///
    /// Panics if the objective dimension does not match the grid dimension.
    pub fn minimize(&self, objective: &mut dyn Objective) -> OptimResult {
        assert_eq!(
            objective.dimension(),
            self.lower.len(),
            "objective dimension mismatch"
        );
        let total = self.total_points();
        let mut best_value = f64::INFINITY;
        let mut best_params = self.point(0);
        let mut history = Vec::with_capacity(total);
        for idx in 0..total {
            let p = self.point(idx);
            let v = objective.evaluate(&p);
            if v < best_value {
                best_value = v;
                best_params = p;
            }
            history.push(best_value);
        }
        OptimResult {
            params: best_params,
            value: best_value,
            evaluations: total,
            history,
        }
    }

    /// Evaluates the objective at every grid point and returns all values in
    /// index order (the raw landscape).
    pub fn evaluate_all(&self, objective: &mut dyn Objective) -> Vec<f64> {
        (0..self.total_points())
            .map(|idx| objective.evaluate(&self.point(idx)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::FnObjective;

    #[test]
    fn grid_point_layout() {
        let g = GridSearch::new(vec![0.0, 0.0], vec![1.0, 2.0], 2);
        assert_eq!(g.total_points(), 4);
        assert_eq!(g.point(0), vec![0.0, 0.0]);
        assert_eq!(g.point(1), vec![0.0, 1.0]);
        assert_eq!(g.point(2), vec![0.5, 0.0]);
        assert_eq!(g.point(3), vec![0.5, 1.0]);
    }

    #[test]
    fn finds_minimum_of_quadratic() {
        let g = GridSearch::new(vec![-2.0, -2.0], vec![2.0, 2.0], 41);
        let mut obj = FnObjective::new(2, |p: &[f64]| (p[0] - 0.4).powi(2) + (p[1] + 0.9).powi(2));
        let result = g.minimize(&mut obj);
        assert!((result.params[0] - 0.4).abs() < 0.11);
        assert!((result.params[1] + 0.9).abs() < 0.11);
        assert_eq!(result.evaluations, 41 * 41);
    }

    #[test]
    fn evaluate_all_returns_every_point() {
        let g = GridSearch::new(vec![0.0], vec![1.0], 10);
        let mut obj = FnObjective::new(1, |p: &[f64]| p[0]);
        let values = g.evaluate_all(&mut obj);
        assert_eq!(values.len(), 10);
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "points_per_dim must be positive")]
    fn rejects_zero_points() {
        let _ = GridSearch::new(vec![0.0], vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "lower bound must be below upper bound")]
    fn rejects_inverted_bounds() {
        let _ = GridSearch::new(vec![1.0], vec![0.0], 3);
    }
}
