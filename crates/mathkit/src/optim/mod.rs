//! Derivative-free optimizers for the classical half of the QAOA loop.
//!
//! The paper drives QAOA with SciPy's COBYLA. This module provides
//! [`nelder_mead`](nelder_mead::NelderMead) (the default substitute — another
//! simplex-style derivative-free local optimizer), [`spsa`](spsa::Spsa)
//! (a stochastic optimizer frequently used on noisy quantum hardware), and
//! [`grid`](grid::GridSearch) (the exhaustive landscape sweep used for the
//! landscape figures). All optimizers *minimize* their objective; QAOA
//! maximization is handled by negating the expectation value in the caller.

pub mod grid;
pub mod nelder_mead;
pub mod spsa;

pub use grid::GridSearch;
pub use nelder_mead::{NelderMead, NelderMeadOptions};
pub use spsa::{Spsa, SpsaOptions};

/// Outcome of a single optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at [`OptimResult::params`].
    pub value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// Objective value recorded after each iteration (for convergence plots).
    pub history: Vec<f64>,
}

/// A minimization problem over a fixed-dimensional real parameter vector.
///
/// The trait is object safe so optimizers can be driven through `&mut dyn`
/// objectives (useful when the objective carries a noisy simulator).
pub trait Objective {
    /// Number of parameters.
    fn dimension(&self) -> usize;

    /// Evaluates the objective at `params`.
    ///
    /// `params.len()` is guaranteed to equal [`Objective::dimension`] when the
    /// call is made by the optimizers in this module.
    fn evaluate(&mut self, params: &[f64]) -> f64;
}

/// Wraps a closure as an [`Objective`].
pub struct FnObjective<F: FnMut(&[f64]) -> f64> {
    dim: usize,
    f: F,
}

impl<F: FnMut(&[f64]) -> f64> FnObjective<F> {
    /// Creates an objective of dimension `dim` from a closure.
    pub fn new(dim: usize, f: F) -> Self {
        Self { dim, f }
    }
}

impl<F: FnMut(&[f64]) -> f64> Objective for FnObjective<F> {
    fn dimension(&self) -> usize {
        self.dim
    }

    fn evaluate(&mut self, params: &[f64]) -> f64 {
        (self.f)(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_objective_forwards_calls() {
        let mut obj = FnObjective::new(2, |p: &[f64]| p[0] + p[1]);
        assert_eq!(obj.dimension(), 2);
        assert_eq!(obj.evaluate(&[1.0, 2.0]), 3.0);
    }
}
