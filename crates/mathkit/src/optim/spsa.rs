//! Simultaneous Perturbation Stochastic Approximation (SPSA).
//!
//! SPSA estimates the gradient from only two objective evaluations per
//! iteration regardless of dimension, which makes it a common choice for
//! optimizing variational circuits on noisy hardware. It complements the
//! Nelder–Mead optimizer used for the paper's main experiments.

use super::{Objective, OptimResult};
use rand::Rng;

/// Configuration for [`Spsa`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpsaOptions {
    /// Number of iterations.
    pub max_iters: usize,
    /// Initial step-size numerator `a` in `a_k = a / (k + 1 + A)^alpha`.
    pub a: f64,
    /// Stability constant `A`.
    pub big_a: f64,
    /// Step-size decay exponent `alpha`.
    pub alpha: f64,
    /// Initial perturbation size `c` in `c_k = c / (k + 1)^gamma`.
    pub c: f64,
    /// Perturbation decay exponent `gamma`.
    pub gamma: f64,
}

impl Default for SpsaOptions {
    fn default() -> Self {
        Self {
            max_iters: 150,
            a: 0.2,
            big_a: 10.0,
            alpha: 0.602,
            c: 0.15,
            gamma: 0.101,
        }
    }
}

/// SPSA optimizer.
#[derive(Debug, Clone, Default)]
pub struct Spsa {
    options: SpsaOptions,
}

impl Spsa {
    /// Creates an optimizer with the given options.
    pub fn new(options: SpsaOptions) -> Self {
        Self { options }
    }

    /// Minimizes `objective` starting from `x0` with randomness drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len()` does not match the objective dimension or is zero.
    pub fn minimize<R: Rng>(
        &self,
        objective: &mut dyn Objective,
        x0: &[f64],
        rng: &mut R,
    ) -> OptimResult {
        let n = objective.dimension();
        assert!(n > 0, "objective dimension must be positive");
        assert_eq!(x0.len(), n, "start point dimension mismatch");

        let mut x = x0.to_vec();
        let mut evaluations = 0usize;
        let mut history = Vec::with_capacity(self.options.max_iters);
        let mut best = x.clone();
        let mut best_value = {
            evaluations += 1;
            objective.evaluate(&x)
        };
        history.push(best_value);

        for k in 0..self.options.max_iters {
            let ak =
                self.options.a / (k as f64 + 1.0 + self.options.big_a).powf(self.options.alpha);
            let ck = self.options.c / (k as f64 + 1.0).powf(self.options.gamma);

            // Rademacher perturbation direction.
            let delta: Vec<f64> = (0..n)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let x_plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let x_minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            let f_plus = objective.evaluate(&x_plus);
            let f_minus = objective.evaluate(&x_minus);
            evaluations += 2;

            for i in 0..n {
                let ghat = (f_plus - f_minus) / (2.0 * ck * delta[i]);
                x[i] -= ak * ghat;
            }

            let f_now = objective.evaluate(&x);
            evaluations += 1;
            if f_now < best_value {
                best_value = f_now;
                best = x.clone();
            }
            history.push(best_value);
        }

        OptimResult {
            params: best,
            value: best_value,
            evaluations,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::FnObjective;
    use crate::rng::seeded;

    #[test]
    fn converges_on_quadratic() {
        let mut obj = FnObjective::new(3, |p: &[f64]| p.iter().map(|x| x * x).sum());
        let mut rng = seeded(9);
        let opts = SpsaOptions {
            max_iters: 400,
            ..Default::default()
        };
        let result = Spsa::new(opts).minimize(&mut obj, &[1.0, -1.0, 0.5], &mut rng);
        assert!(result.value < 1e-2, "value {}", result.value);
        assert!(result.params.iter().all(|x| x.abs() < 0.2));
    }

    #[test]
    fn best_value_history_is_monotone() {
        let mut obj = FnObjective::new(2, |p: &[f64]| (p[0] - 1.0).powi(2) + p[1].powi(2));
        let mut rng = seeded(4);
        let result = Spsa::default().minimize(&mut obj, &[0.0, 0.0], &mut rng);
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(result.evaluations >= result.history.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut obj = FnObjective::new(2, |p: &[f64]| p[0].powi(2) + p[1].powi(2));
            let mut rng = seeded(seed);
            Spsa::default()
                .minimize(&mut obj, &[1.0, 1.0], &mut rng)
                .value
        };
        assert_eq!(run(3).to_bits(), run(3).to_bits());
    }
}
