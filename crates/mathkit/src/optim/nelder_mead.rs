//! Nelder–Mead simplex minimization.
//!
//! This is the repository's stand-in for SciPy's COBYLA: both are
//! derivative-free local optimizers suited to the low-dimensional (2p)
//! parameter spaces of QAOA. The implementation follows the standard
//! reflection / expansion / contraction / shrink schedule with the usual
//! coefficients (1, 2, 0.5, 0.5).

use super::{Objective, OptimResult};

/// Configuration for [`NelderMead`].
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum number of iterations (simplex updates).
    pub max_iters: usize,
    /// Convergence tolerance on the spread of simplex objective values.
    pub f_tol: f64,
    /// Initial simplex step added to each coordinate of the start point.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            max_iters: 200,
            f_tol: 1e-8,
            initial_step: 0.35,
        }
    }
}

/// Nelder–Mead simplex optimizer.
#[derive(Debug, Clone, Default)]
pub struct NelderMead {
    options: NelderMeadOptions,
}

impl NelderMead {
    /// Creates an optimizer with the given options.
    pub fn new(options: NelderMeadOptions) -> Self {
        Self { options }
    }

    /// Minimizes `objective` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len()` does not match the objective dimension or is zero.
    pub fn minimize(&self, objective: &mut dyn Objective, x0: &[f64]) -> OptimResult {
        let n = objective.dimension();
        assert!(n > 0, "objective dimension must be positive");
        assert_eq!(x0.len(), n, "start point dimension mismatch");

        let mut evaluations = 0usize;
        let eval = |obj: &mut dyn Objective, x: &[f64], count: &mut usize| {
            *count += 1;
            obj.evaluate(x)
        };

        // Build the initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += self.options.initial_step;
            simplex.push(v);
        }
        let mut values: Vec<f64> = simplex
            .iter()
            .map(|v| eval(objective, v, &mut evaluations))
            .collect();

        let mut history = Vec::with_capacity(self.options.max_iters);

        for _ in 0..self.options.max_iters {
            // Order the simplex by objective value.
            let mut order: Vec<usize> = (0..=n).collect();
            order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN objective"));
            let best = order[0];
            let worst = order[n];
            let second_worst = order[n - 1];
            history.push(values[best]);

            let spread = values[worst] - values[best];
            if spread.abs() < self.options.f_tol {
                break;
            }

            // Centroid of all points except the worst.
            let mut centroid = vec![0.0; n];
            for &idx in order.iter().take(n) {
                for (c, &xi) in centroid.iter_mut().zip(&simplex[idx]) {
                    *c += xi / n as f64;
                }
            }

            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| c + (c - w))
                .collect();
            let f_reflect = eval(objective, &reflect, &mut evaluations);

            if f_reflect < values[best] {
                // Try expansion.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&simplex[worst])
                    .map(|(c, w)| c + 2.0 * (c - w))
                    .collect();
                let f_expand = eval(objective, &expand, &mut evaluations);
                if f_expand < f_reflect {
                    simplex[worst] = expand;
                    values[worst] = f_expand;
                } else {
                    simplex[worst] = reflect;
                    values[worst] = f_reflect;
                }
            } else if f_reflect < values[second_worst] {
                simplex[worst] = reflect;
                values[worst] = f_reflect;
            } else {
                // Contraction toward the better of (worst, reflected).
                let (toward, f_toward) = if f_reflect < values[worst] {
                    (reflect.clone(), f_reflect)
                } else {
                    (simplex[worst].clone(), values[worst])
                };
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(&toward)
                    .map(|(c, t)| c + 0.5 * (t - c))
                    .collect();
                let f_contract = eval(objective, &contract, &mut evaluations);
                if f_contract < f_toward {
                    simplex[worst] = contract;
                    values[worst] = f_contract;
                } else {
                    // Shrink everything toward the best vertex.
                    let best_point = simplex[best].clone();
                    for idx in 0..=n {
                        if idx == best {
                            continue;
                        }
                        let shrunk: Vec<f64> = best_point
                            .iter()
                            .zip(&simplex[idx])
                            .map(|(b, x)| b + 0.5 * (x - b))
                            .collect();
                        values[idx] = eval(objective, &shrunk, &mut evaluations);
                        simplex[idx] = shrunk;
                    }
                }
            }
        }

        // Final best vertex.
        let mut best = 0;
        for i in 1..values.len() {
            if values[i] < values[best] {
                best = i;
            }
        }
        OptimResult {
            params: simplex[best].clone(),
            value: values[best],
            evaluations,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::FnObjective;

    #[test]
    fn minimizes_quadratic_bowl() {
        let mut obj = FnObjective::new(2, |p: &[f64]| {
            (p[0] - 1.5) * (p[0] - 1.5) + (p[1] + 0.5) * (p[1] + 0.5)
        });
        let result = NelderMead::default().minimize(&mut obj, &[0.0, 0.0]);
        assert!((result.params[0] - 1.5).abs() < 1e-3, "{:?}", result.params);
        assert!((result.params[1] + 0.5).abs() < 1e-3, "{:?}", result.params);
        assert!(result.value < 1e-5);
        assert!(result.evaluations > 0);
    }

    #[test]
    fn minimizes_rosenbrock_reasonably() {
        let mut obj = FnObjective::new(2, |p: &[f64]| {
            let a = 1.0 - p[0];
            let b = p[1] - p[0] * p[0];
            a * a + 100.0 * b * b
        });
        let opts = NelderMeadOptions {
            max_iters: 2000,
            ..Default::default()
        };
        let result = NelderMead::new(opts).minimize(&mut obj, &[-1.0, 1.0]);
        assert!(result.value < 1e-4, "value {}", result.value);
    }

    #[test]
    fn history_is_monotonically_nonincreasing() {
        let mut obj = FnObjective::new(1, |p: &[f64]| p[0] * p[0]);
        let result = NelderMead::default().minimize(&mut obj, &[3.0]);
        for w in result.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "start point dimension mismatch")]
    fn panics_on_dimension_mismatch() {
        let mut obj = FnObjective::new(2, |_: &[f64]| 0.0);
        let _ = NelderMead::default().minimize(&mut obj, &[0.0]);
    }
}
