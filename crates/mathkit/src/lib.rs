//! Numerics, statistics, and derivative-free optimization kit.
//!
//! `mathkit` is the lowest-level substrate of the Red-QAOA reproduction. It
//! provides the building blocks that the Python reference implementation
//! obtained from NumPy/SciPy:
//!
//! * [`complex::Complex64`] — complex arithmetic for the quantum
//!   simulators in the `qsim` crate.
//! * [`stats`] — means, variances, the mean-squared-error metric of the
//!   paper (Equation 12), min–max normalization, and box-plot summaries.
//! * [`polyfit`] — least-squares polynomial fitting (used by Figure 5 and
//!   Figure 18 of the paper).
//! * [`linalg`] — small dense-matrix helpers (Gaussian elimination, power
//!   iteration) shared by the fitting code and by graph centrality measures.
//! * [`optim`] — derivative-free optimizers (Nelder–Mead, SPSA, grid search)
//!   standing in for SciPy's COBYLA in the classical QAOA loop.
//! * [`rng`] — deterministic seeding helpers so that every experiment in the
//!   repository is reproducible.
//! * [`parallel`] — the deterministic chunked parallel-map primitive behind
//!   the landscape scans and trajectory averages (thread count from
//!   `RED_QAOA_THREADS`, bitwise-identical to the serial path).
//!
//! # Example
//!
//! ```
//! use mathkit::stats::mse;
//!
//! let a = [0.0, 0.5, 1.0];
//! let b = [0.0, 0.6, 1.0];
//! let err = mse(&a, &b).unwrap();
//! assert!(err > 0.0 && err < 0.01);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod complex;
pub mod linalg;
pub mod optim;
pub mod parallel;
pub mod polyfit;
pub mod rng;
pub mod stats;

pub use complex::Complex64;

/// Errors produced by `mathkit` routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MathError {
    /// Input slices were empty where at least one element is required.
    EmptyInput,
    /// Two inputs that must have equal lengths did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A linear system was singular (or numerically close to singular).
    SingularMatrix,
    /// A parameter was outside of its documented domain.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for MathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MathError::EmptyInput => write!(f, "input slice was empty"),
            MathError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            MathError::SingularMatrix => write!(f, "matrix was singular"),
            MathError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            MathError::EmptyInput,
            MathError::LengthMismatch { left: 1, right: 2 },
            MathError::SingularMatrix,
            MathError::InvalidParameter("x"),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
