//! Deterministic chunked parallel mapping.
//!
//! The landscape scans, random-pool sweeps, and trajectory averages of the
//! Red-QAOA experiments evaluate thousands of *independent* points. This
//! module provides the concurrency primitives the workspace uses for all
//! of them: [`parallel_map_indexed`], a scoped-thread fan-out over a range of
//! indices with a per-thread scratch value, and its two-level variant
//! [`parallel_map_two_level`], which carves a handful of *exclusive* indices
//! out of the flat fan-out so their own nested parallel scans get real
//! workers instead of serializing under the nested-region rule.
//!
//! # Determinism contract
//!
//! `parallel_map_indexed(len, make_scratch, f)` returns **bitwise-identical**
//! results for every thread count — including the serial path — provided the
//! supplied closure upholds one rule:
//!
//! > `f(&mut scratch, i)` must depend only on `i` (and captured immutable
//! > state), never on which indices the same scratch value was previously
//! > used for.
//!
//! Scratch values exist purely to reuse allocations (statevector workspaces,
//! parameter buffers); they must not carry results or RNG state across
//! indices. Stochastic evaluators satisfy the rule by deriving a dedicated
//! RNG substream from the index (see [`crate::rng::derive_seed`]), which is
//! exactly the per-point substream scheme the noisy landscape comparisons
//! already use.
//!
//! Because every index is computed independently and the output vector is
//! assembled in index order, no floating-point reduction order ever changes
//! with the thread count. Callers that *do* reduce (e.g. trajectory
//! averaging) must reduce over fixed-size chunks mapped through this
//! primitive so the summation tree is independent of the thread count.
//!
//! # Thread-count selection
//!
//! The worker count is taken from, in priority order:
//!
//! 1. a scoped override installed with [`with_threads`] (used by tests),
//! 2. the `RED_QAOA_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested calls run serially: a `parallel_map_indexed` issued from inside a
//! worker (for example trajectory averaging inside a parallel landscape
//! scan) detects the enclosing region through a thread-local flag and
//! processes its range on the current thread, avoiding oversubscription
//! without changing any result.

use std::cell::Cell;

/// Environment variable that fixes the worker-thread count.
///
/// Unset (or unparsable) means "use the machine's available parallelism".
/// `RED_QAOA_THREADS=1` forces the serial path.
pub const THREADS_ENV: &str = "RED_QAOA_THREADS";

thread_local! {
    /// Scoped thread-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// `true` while the current thread is executing inside a parallel region.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a parallel region started *now* would use.
///
/// Resolution order: [`with_threads`] override, then [`THREADS_ENV`], then
/// [`std::thread::available_parallelism`]; always at least 1. Inside an
/// enclosing parallel region this returns 1 (nested regions are serial).
pub fn current_threads() -> usize {
    if in_parallel_region() {
        return 1;
    }
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    // Cached once per process: nothing in the workspace mutates the
    // environment, and re-reading `env::var` here would allocate a `String`
    // on every call — the hot evaluation paths promise zero steady-state
    // allocations (`tests/allocation_steady_state.rs`).
    static THREADS_FROM_ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let from_env = *THREADS_FROM_ENV.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    });
    if let Some(n) = from_env {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `true` while called from inside a [`parallel_map_indexed`] worker.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

/// Runs `f` with the worker-thread count fixed to `threads` on this thread.
///
/// The override is scoped: it is restored on exit (including panics) and it
/// does not leak to other threads. The determinism property tests use this
/// to compare thread counts without mutating the process environment.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let previous = THREAD_OVERRIDE.with(|cell| cell.replace(Some(threads.max(1))));
    let _restore = Restore(previous);
    f()
}

/// Marks the current thread as being inside a parallel region for the
/// duration of `f` (restored on exit, including panics).
fn in_region<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_PARALLEL_REGION.with(|cell| cell.set(self.0));
        }
    }
    let previous = IN_PARALLEL_REGION.with(|cell| cell.replace(true));
    let _restore = Restore(previous);
    f()
}

/// Maps `f` over `0..len` with per-thread scratch, returning results in
/// index order.
///
/// `make_scratch` is called once per worker thread; the scratch value is
/// reused across that worker's indices so hot loops can recycle allocations.
/// See the module docs for the determinism contract — and
/// `docs/determinism.md` at the repository root for the full write-up
/// (substream derivation, `RED_QAOA_THREADS`, nested-region serialization):
/// given an `f` that is a pure function of its index, the result is
/// bitwise-identical for every thread count.
///
/// The range is split into `threads` contiguous chunks (one per worker); the
/// calling thread processes the first chunk itself. A panic in any worker is
/// propagated to the caller.
pub fn parallel_map_indexed<S, R, FS, F>(len: usize, make_scratch: FS, f: F) -> Vec<R>
where
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = current_threads().min(len.max(1));
    if threads <= 1 {
        return in_region(|| {
            let mut scratch = make_scratch();
            (0..len).map(|i| f(&mut scratch, i)).collect()
        });
    }
    // One contiguous chunk per worker. Chunk boundaries only decide *where*
    // each index is computed, never *what* is computed, so they are free to
    // depend on the thread count.
    let chunk = len.div_ceil(threads);
    let run_chunk = |start: usize, end: usize| -> Vec<R> {
        in_region(|| {
            let mut scratch = make_scratch();
            (start..end).map(|i| f(&mut scratch, i)).collect()
        })
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads - 1);
        for t in 1..threads {
            let start = t * chunk;
            if start >= len {
                break;
            }
            let end = ((t + 1) * chunk).min(len);
            let run_chunk = &run_chunk;
            handles.push(scope.spawn(move || run_chunk(start, end)));
        }
        let mut out = run_chunk(0, chunk.min(len));
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Maps `f` over `0..len` like [`parallel_map_indexed`], but runs the
/// `exclusive` indices on their own worker lane so their *nested* parallel
/// scans get real workers.
///
/// Under [`parallel_map_indexed`] alone, a batch containing one huge item
/// (say a landscape job whose inner grid scan is itself a
/// `parallel_map_indexed`) serializes that inner scan: the outer region owns
/// every worker, so the nested-region rule runs the grid on one thread and
/// the big item dominates the batch's tail latency. This primitive is the
/// two-level work split that fixes it:
///
/// * the **coarse lane** fans the non-exclusive indices out across its
///   workers exactly as [`parallel_map_indexed`] would;
/// * the **exclusive lane** processes the `exclusive` indices one at a time
///   in ascending order, *outside* any parallel region, so each one's nested
///   `parallel_map_indexed` calls fan out across the lane's workers.
///
/// With more than one worker available and both lanes non-empty, the two
/// lanes run concurrently, splitting the workers between them (half to each,
/// clamped so neither lane is starved). With one worker, inside an enclosing
/// parallel region, or with no exclusive indices, the call degrades to the
/// flat primitive's behaviour.
///
/// # Determinism
///
/// The result is **bitwise-identical to `parallel_map_indexed(len, ...)`**
/// for any `exclusive` set and any worker count, under the same contract:
/// `f(&mut scratch, i)` must be a pure function of `i` and captured immutable
/// state. Lane assignment and worker split only decide *where* an index is
/// computed, never *what* — which is exactly why callers are free to pick
/// `exclusive` heuristically (e.g. by estimated cost, or differently per
/// thread count) without affecting any output. See `docs/determinism.md`.
///
/// Out-of-range and duplicate entries in `exclusive` are ignored.
pub fn parallel_map_two_level<S, R, FS, F>(
    len: usize,
    exclusive: &[usize],
    make_scratch: FS,
    f: F,
) -> Vec<R>
where
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let mut is_exclusive = vec![false; len];
    for &i in exclusive {
        if i < len {
            is_exclusive[i] = true;
        }
    }
    if !is_exclusive.iter().any(|&b| b) {
        return parallel_map_indexed(len, make_scratch, f);
    }
    let coarse: Vec<usize> = (0..len).filter(|&i| !is_exclusive[i]).collect();
    let heavy: Vec<usize> = (0..len).filter(|&i| is_exclusive[i]).collect();

    // The exclusive lane: one scratch, indices in ascending order, no
    // enclosing region — each index's nested scans see `workers` threads.
    let run_heavy = |workers: usize| -> Vec<R> {
        with_threads(workers, || {
            let mut scratch = make_scratch();
            heavy.iter().map(|&i| f(&mut scratch, i)).collect()
        })
    };
    let run_coarse = |workers: usize| -> Vec<R> {
        with_threads(workers, || {
            parallel_map_indexed(coarse.len(), &make_scratch, |scratch, j| {
                f(scratch, coarse[j])
            })
        })
    };

    let threads = current_threads();
    let (heavy_results, coarse_results) = if threads <= 1 || coarse.is_empty() {
        // One worker (or nothing to overlap with): run the lanes back to
        // back; the exclusive lane keeps the full width for its inner scans.
        (run_heavy(threads), run_coarse(threads))
    } else {
        let coarse_workers = (threads / 2).clamp(1, coarse.len());
        let heavy_workers = (threads - coarse_workers).max(1);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| run_heavy(heavy_workers));
            let coarse_results = run_coarse(coarse_workers);
            match handle.join() {
                Ok(heavy_results) => (heavy_results, coarse_results),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    };

    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    for (&i, r) in heavy.iter().zip(heavy_results) {
        out[i] = Some(r);
    }
    for (&i, r) in coarse.iter().zip(coarse_results) {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_results_are_identical() {
        let serial = with_threads(1, || {
            parallel_map_indexed(97, || 0u64, |_, i| (i as f64).sin().to_bits())
        });
        for threads in [2, 3, 4, 8] {
            let parallel = with_threads(threads, || {
                parallel_map_indexed(97, || 0u64, |_, i| (i as f64).sin().to_bits())
            });
            assert_eq!(serial, parallel, "thread count {threads}");
        }
    }

    #[test]
    fn results_are_in_index_order() {
        let out = with_threads(4, || parallel_map_indexed(23, || (), |_, i| i));
        assert_eq!(out, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_ranges_work() {
        let empty: Vec<usize> = parallel_map_indexed(0, || (), |_, i| i);
        assert!(empty.is_empty());
        let one = with_threads(4, || parallel_map_indexed(1, || (), |_, i| i + 10));
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // Each worker should allocate exactly one scratch; with the serial
        // path that means one allocation for the whole map.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let allocations = AtomicUsize::new(0);
        with_threads(1, || {
            parallel_map_indexed(64, || allocations.fetch_add(1, Ordering::SeqCst), |_, i| i)
        });
        assert_eq!(allocations.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_regions_run_serially() {
        let nested_flags = with_threads(2, || {
            parallel_map_indexed(
                4,
                || (),
                |_, _| {
                    assert!(in_parallel_region());
                    // An inner map must not spawn: current_threads() is 1.
                    let inner = parallel_map_indexed(3, || (), |_, j| current_threads() + j);
                    inner == vec![1, 2, 3]
                },
            )
        });
        assert!(nested_flags.iter().all(|&ok| ok));
        assert!(!in_parallel_region());
    }

    #[test]
    fn with_threads_restores_previous_override() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn override_wins_over_environment() {
        // Whatever RED_QAOA_THREADS says, the scoped override is stronger.
        with_threads(2, || assert_eq!(current_threads(), 2));
    }

    #[test]
    fn two_level_matches_flat_map_for_any_exclusive_set() {
        let flat = with_threads(1, || {
            parallel_map_indexed(31, || 0u64, |_, i| (i as f64).cos().to_bits())
        });
        let sets: [&[usize]; 5] = [&[], &[0], &[30], &[3, 17, 3, 99], &[5, 6, 7]];
        for threads in [1usize, 2, 4] {
            for exclusive in sets {
                let two_level = with_threads(threads, || {
                    parallel_map_two_level(
                        31,
                        exclusive,
                        || 0u64,
                        |_, i| (i as f64).cos().to_bits(),
                    )
                });
                assert_eq!(
                    flat, two_level,
                    "threads {threads}, exclusive {exclusive:?}"
                );
            }
        }
    }

    #[test]
    fn two_level_exclusive_indices_get_a_parallel_inner_region() {
        // An exclusive index runs outside any parallel region, so its nested
        // map sees the lane's workers; coarse indices stay nested-serial.
        let out = with_threads(4, || {
            parallel_map_two_level(
                3,
                &[1],
                || (),
                |_, i| {
                    if i == 1 {
                        assert!(!in_parallel_region(), "exclusive lane must not nest");
                        current_threads() > 1
                    } else {
                        assert!(in_parallel_region());
                        current_threads() == 1
                    }
                },
            )
        });
        assert_eq!(out, vec![true, true, true]);
    }

    #[test]
    fn two_level_all_exclusive_keeps_full_width() {
        let out = with_threads(4, || {
            parallel_map_two_level(2, &[0, 1], || (), |_, i| (i, current_threads()))
        });
        // No coarse lane: the exclusive lane inherits all four workers.
        assert_eq!(out, vec![(0, 4), (1, 4)]);
    }

    #[test]
    fn two_level_panics_propagate_from_both_lanes() {
        for exclusive in [&[2usize][..], &[5][..]] {
            let result = std::panic::catch_unwind(|| {
                with_threads(2, || {
                    parallel_map_two_level(
                        8,
                        exclusive,
                        || (),
                        |_, i| {
                            assert!(i != 5, "boom");
                            i
                        },
                    )
                })
            });
            assert!(result.is_err(), "exclusive {exclusive:?}");
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                parallel_map_indexed(
                    8,
                    || (),
                    |_, i| {
                        assert!(i != 6, "boom");
                        i
                    },
                )
            })
        });
        assert!(result.is_err());
    }
}
