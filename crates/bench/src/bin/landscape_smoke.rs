//! CI perf smoke: points/sec of a 32×32 landscape grid on a 16-node graph.
//!
//! Runs the grid once with one worker thread and once with four, checks the
//! two landscapes are bitwise-identical (the determinism contract of
//! `mathkit::parallel`), and writes a `BENCH_landscape.json` record so the
//! repository's performance trajectory is tracked run-over-run. On machines
//! that actually have more than one core the four-thread run must be at
//! least 2× faster than serial — the same gate `qsim_smoke` enforces.
//!
//! Usage: `landscape_smoke [output.json]` (default `BENCH_landscape.json`).

use bench::bench_graph;
use mathkit::parallel::with_threads;
use qaoa::evaluator::StatevectorEvaluator;
use qaoa::landscape::Landscape;
use std::time::Instant;

const NODES: usize = 16;
const WIDTH: usize = 32;

fn timed_grid(evaluator: &StatevectorEvaluator, threads: usize) -> (Landscape, f64) {
    let start = Instant::now();
    let landscape = with_threads(threads, || Landscape::evaluate(WIDTH, evaluator));
    (landscape, start.elapsed().as_secs_f64())
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_landscape.json".to_string());
    let graph = bench_graph(NODES, 16);
    let evaluator = StatevectorEvaluator::new(&graph, 1).expect("16-node graph is simulable");
    let points = WIDTH * WIDTH;

    let (serial, serial_secs) = timed_grid(&evaluator, 1);
    let (parallel, parallel_secs) = timed_grid(&evaluator, 4);
    let identical = serial
        .values
        .iter()
        .zip(&parallel.values)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        identical,
        "parallel landscape diverged from the serial reference"
    );

    let serial_pps = points as f64 / serial_secs;
    let parallel_pps = points as f64 / parallel_secs;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let speedup = serial_secs / parallel_secs;
    if cores > 1 {
        assert!(
            speedup >= 2.0,
            "with {cores} cores the 4-thread landscape must be >= 2x serial, got {speedup:.3}x"
        );
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"landscape_grid_smoke\",\n",
            "  \"nodes\": {},\n",
            "  \"width\": {},\n",
            "  \"points\": {},\n",
            "  \"available_cores\": {},\n",
            "  \"serial_seconds\": {:.6},\n",
            "  \"serial_points_per_sec\": {:.2},\n",
            "  \"threads4_seconds\": {:.6},\n",
            "  \"threads4_points_per_sec\": {:.2},\n",
            "  \"speedup_4_threads\": {:.3},\n",
            "  \"bitwise_identical\": true\n",
            "}}\n"
        ),
        NODES,
        WIDTH,
        points,
        cores,
        serial_secs,
        serial_pps,
        parallel_secs,
        parallel_pps,
        serial_secs / parallel_secs,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
