//! CI perf smoke for the graph-reduction engine: SA moves/sec, the
//! incremental-vs-rebuild move-evaluation speedup, and `reduce_pool`
//! graphs/sec.
//!
//! Three measurements, all written to a `BENCH_reduction.json` record so the
//! repository's performance trajectory is tracked run-over-run:
//!
//! 1. **moves/sec** — full `anneal_subgraph` runs with a slow constant
//!    schedule, reported as Metropolis steps per second (every iteration is
//!    a genuine step; the annealer has no skipped moves).
//! 2. **move evaluation** — the same fixed batch of candidate swaps scored
//!    by the incremental `SaState` and by the old rebuild-per-move path
//!    (`induced_subgraph` + `average_node_degree` + `connected_components`).
//! 3. **graphs/sec** — `reduce_pool` over a pool of random graphs, run with
//!    one worker and with four; the two results must be bitwise-identical
//!    (the determinism contract of `mathkit::parallel`).
//! 4. **warm vs cold** — full `reduce` latency with `WarmStart::On` versus
//!    `WarmStart::Off` at the Figure 18 graph sizes. The warm binary search
//!    must be at least 1.5× faster while meeting the same AND-ratio
//!    threshold (both are asserted, not just recorded).
//!
//! Usage: `reduction_smoke [output.json]` (default `BENCH_reduction.json`).

use bench::{bench_graph, rebuild_objective};
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::random_connected_subgraph;
use mathkit::parallel::with_threads;
use mathkit::rng::{derive_seed, seeded};
use red_qaoa::annealing::{anneal_subgraph, CoolingSchedule, SaOptions};
use red_qaoa::reduction::{
    reduce, reduce_pool, ReductionOptions, WarmStart, DEFAULT_AND_RATIO_THRESHOLD,
};
use red_qaoa::sa_state::SaState;
use std::time::Instant;

const SA_NODES: usize = 48;
const SA_K: usize = 32;
const SA_RUNS: usize = 12;
const EVAL_SWAPS: usize = 512;
const EVAL_ROUNDS: usize = 200;
const POOL_GRAPHS: usize = 24;
const POOL_NODES: usize = 20;
/// Figure 18 graph sizes timed by the warm-vs-cold comparison.
const WARM_VS_COLD_SIZES: [usize; 4] = [20, 60, 120, 240];
/// Reduce repetitions per size (mean latency is reported).
const WARM_VS_COLD_REPS: usize = 5;
const SMOKE_SEED: u64 = 0x5A0C_2026;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_reduction.json".to_string());

    // --- 1. SA hot loop: Metropolis steps per second. -----------------------
    let graph = bench_graph(SA_NODES, 7);
    let options = SaOptions {
        // A slow constant schedule keeps the move count high and independent
        // of the adaptive stagnation heuristics.
        cooling: CoolingSchedule::Constant(0.999),
        ..Default::default()
    };
    let start = Instant::now();
    let mut total_moves = 0usize;
    for run in 0..SA_RUNS {
        let mut rng = seeded(derive_seed(SMOKE_SEED, run as u64));
        let outcome =
            anneal_subgraph(&graph, SA_K, &options, &mut rng).expect("benchmark graph anneals");
        total_moves += outcome.iterations;
    }
    let anneal_secs = start.elapsed().as_secs_f64();
    let moves_per_sec = total_moves as f64 / anneal_secs;

    // --- 2. Move evaluation: incremental SaState vs rebuild-per-move. ------
    let target = average_node_degree(&graph);
    let mut rng = seeded(derive_seed(SMOKE_SEED, 100));
    let initial =
        random_connected_subgraph(&graph, SA_K, &mut rng).expect("benchmark subgraph samples");
    let mut state = SaState::new(&graph, &initial.nodes, target, 10.0).expect("valid selection");
    let swaps: Vec<(usize, usize)> = (0..EVAL_SWAPS)
        .map(|_| state.propose(&mut rng).expect("boundary is non-empty"))
        .collect();

    let start = Instant::now();
    let mut incremental_acc = 0.0f64;
    for _ in 0..EVAL_ROUNDS {
        for &(out, inn) in &swaps {
            incremental_acc += state.evaluate_swap(out, inn);
        }
    }
    let incremental_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut rebuild_acc = 0.0f64;
    let mut candidate = Vec::with_capacity(SA_K);
    for _ in 0..EVAL_ROUNDS {
        for &(out, inn) in &swaps {
            candidate.clear();
            candidate.extend(initial.nodes.iter().copied().filter(|&u| u != out));
            candidate.push(inn);
            rebuild_acc += rebuild_objective(&graph, &candidate, target, 10.0);
        }
    }
    let rebuild_secs = start.elapsed().as_secs_f64();
    assert!(
        (incremental_acc - rebuild_acc).abs() < 1e-6 * rebuild_acc.abs().max(1.0),
        "incremental evaluator diverged from the rebuild-per-move objective"
    );
    let evals = (EVAL_SWAPS * EVAL_ROUNDS) as f64;
    let incremental_evals_per_sec = evals / incremental_secs;
    let rebuild_evals_per_sec = evals / rebuild_secs;

    // --- 3. reduce_pool: graphs/sec + thread-count determinism. -------------
    let pool: Vec<graphlib::Graph> = (0..POOL_GRAPHS)
        .map(|i| bench_graph(POOL_NODES, 1000 + i as u64))
        .collect();
    let reduction_options = ReductionOptions::default();
    let start = Instant::now();
    let serial = with_threads(1, || reduce_pool(&pool, &reduction_options, SMOKE_SEED));
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let threaded = with_threads(4, || reduce_pool(&pool, &reduction_options, SMOKE_SEED));
    let threaded_secs = start.elapsed().as_secs_f64();
    let identical = serial.len() == threaded.len()
        && serial.iter().zip(&threaded).all(|(a, b)| match (a, b) {
            (Ok(a), Ok(b)) => {
                a.subgraph.nodes == b.subgraph.nodes
                    && a.and_ratio.to_bits() == b.and_ratio.to_bits()
                    && a.node_reduction.to_bits() == b.node_reduction.to_bits()
            }
            (Err(a), Err(b)) => a == b,
            _ => false,
        });
    assert!(
        identical,
        "parallel reduce_pool diverged from the serial reference"
    );
    let serial_gps = POOL_GRAPHS as f64 / serial_secs;
    let threaded_gps = POOL_GRAPHS as f64 / threaded_secs;

    // --- 4. Warm-started vs cold-started `reduce` at the Figure 18 sizes. ---
    let mut warm_vs_cold_rows = Vec::new();
    let mut speedup_product = 1.0f64;
    for (s_idx, &n) in WARM_VS_COLD_SIZES.iter().enumerate() {
        let graph = bench_graph(n, 2000 + s_idx as u64);
        let timed = |warm_start: WarmStart| {
            let options = ReductionOptions {
                warm_start,
                ..Default::default()
            };
            let start = Instant::now();
            let mut and_ratio_sum = 0.0f64;
            for rep in 0..WARM_VS_COLD_REPS {
                let mut rng = seeded(derive_seed(SMOKE_SEED, 3000 + rep as u64));
                let reduced = reduce(&graph, &options, &mut rng).expect("benchmark graph reduces");
                and_ratio_sum += reduced.and_ratio;
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / WARM_VS_COLD_REPS as f64;
            (ms, and_ratio_sum / WARM_VS_COLD_REPS as f64)
        };
        let (cold_ms, cold_and) = timed(WarmStart::Off);
        let (warm_ms, warm_and) = timed(WarmStart::On);
        let speedup = cold_ms / warm_ms;
        assert!(
            warm_and >= DEFAULT_AND_RATIO_THRESHOLD - 1e-9,
            "warm-started reduce missed the AND threshold at {n} nodes: {warm_and}"
        );
        assert!(
            cold_and >= DEFAULT_AND_RATIO_THRESHOLD - 1e-9,
            "cold-started reduce missed the AND threshold at {n} nodes: {cold_and}"
        );
        speedup_product *= speedup;
        warm_vs_cold_rows.push(format!(
            concat!(
                "    {{ \"nodes\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, ",
                "\"speedup\": {:.3}, \"cold_and_ratio\": {:.4}, \"warm_and_ratio\": {:.4} }}"
            ),
            n, cold_ms, warm_ms, speedup, cold_and, warm_and
        ));
    }
    let warm_speedup_geomean = speedup_product.powf(1.0 / WARM_VS_COLD_SIZES.len() as f64);
    // The ≥1.5× target is recorded in the JSON for the perf trajectory; the
    // hard CI tripwire sits well below it (1.2×) so scheduler noise on a
    // loaded runner cannot flake the gate — an unloaded container measures
    // ~2.0× geomean, so 1.2× only fires on a genuine warm-path regression.
    assert!(
        warm_speedup_geomean >= 1.2,
        "warm-start speedup regressed catastrophically: {warm_speedup_geomean:.3} (target 1.5)"
    );
    if warm_speedup_geomean < 1.5 {
        eprintln!(
            "warning: warm-start geomean speedup {warm_speedup_geomean:.3} is below the 1.5x \
             target (noisy runner, or a warm-path regression worth investigating)"
        );
    }
    let warm_vs_cold_json = warm_vs_cold_rows.join(",\n");

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"reduction_smoke\",\n",
            "  \"available_cores\": {},\n",
            "  \"sa_nodes\": {},\n",
            "  \"sa_subgraph_size\": {},\n",
            "  \"sa_runs\": {},\n",
            "  \"sa_total_moves\": {},\n",
            "  \"sa_moves_per_sec\": {:.2},\n",
            "  \"move_evals\": {},\n",
            "  \"incremental_evals_per_sec\": {:.2},\n",
            "  \"rebuild_evals_per_sec\": {:.2},\n",
            "  \"incremental_speedup_vs_rebuild\": {:.3},\n",
            "  \"pool_graphs\": {},\n",
            "  \"pool_graph_nodes\": {},\n",
            "  \"serial_graphs_per_sec\": {:.3},\n",
            "  \"threads4_graphs_per_sec\": {:.3},\n",
            "  \"pool_speedup_4_threads\": {:.3},\n",
            "  \"bitwise_identical\": true,\n",
            "  \"warm_vs_cold\": [\n{}\n  ],\n",
            "  \"warm_vs_cold_reps\": {},\n",
            "  \"warm_speedup_geomean\": {:.3}\n",
            "}}\n"
        ),
        cores,
        SA_NODES,
        SA_K,
        SA_RUNS,
        total_moves,
        moves_per_sec,
        EVAL_SWAPS * EVAL_ROUNDS,
        incremental_evals_per_sec,
        rebuild_evals_per_sec,
        incremental_evals_per_sec / rebuild_evals_per_sec,
        POOL_GRAPHS,
        POOL_NODES,
        serial_gps,
        threaded_gps,
        serial_secs / threaded_secs,
        warm_vs_cold_json,
        WARM_VS_COLD_REPS,
        warm_speedup_geomean,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
