//! CI perf smoke for the graph-reduction engine: SA moves/sec, the
//! incremental-vs-rebuild move-evaluation speedup, and `reduce_pool`
//! graphs/sec.
//!
//! Three measurements, all written to a `BENCH_reduction.json` record so the
//! repository's performance trajectory is tracked run-over-run:
//!
//! 1. **moves/sec** — full `anneal_subgraph` runs with a slow constant
//!    schedule, reported as Metropolis steps per second (every iteration is
//!    a genuine step; the annealer has no skipped moves).
//! 2. **move evaluation** — the same fixed batch of candidate swaps scored
//!    by the incremental `SaState` and by the old rebuild-per-move path
//!    (`induced_subgraph` + `average_node_degree` + `connected_components`).
//! 3. **resize** — steady-state `resize_selection_with_scratch` latency over
//!    a shrink/grow ladder on the largest Figure 18 graph (the warm binary
//!    search calls this once per candidate size).
//! 4. **graphs/sec** — `reduce_pool` over a pool of random graphs, run with
//!    one worker and with four; the two results must be bitwise-identical
//!    (the determinism contract of `mathkit::parallel`), and on a
//!    multi-core runner the 4-thread pass must actually be faster.
//! 5. **warm vs cold** — full `reduce` latency with `WarmStart::On` versus
//!    `WarmStart::Off` at the Figure 18 graph sizes, plus the `Measured`
//!    policy's keep/revert decision per size. The warm binary search must
//!    beat asserted speedup floors while achieving equal-or-better AND
//!    ratios (all asserted, not just recorded).
//!
//! Usage: `reduction_smoke [output.json]` (default `BENCH_reduction.json`).

use bench::{bench_graph, rebuild_objective};
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::random_connected_subgraph;
use mathkit::parallel::with_threads;
use mathkit::rng::{derive_seed, seeded};
use red_qaoa::annealing::{
    anneal_subgraph, resize_selection_with_scratch, CoolingSchedule, ResizeScratch, SaOptions,
};
use red_qaoa::reduction::{
    reduce, reduce_pool, ReductionOptions, WarmDecision, WarmStart, DEFAULT_AND_RATIO_THRESHOLD,
};
use red_qaoa::sa_state::SaState;
use std::time::Instant;

const SA_NODES: usize = 48;
const SA_K: usize = 32;
const SA_RUNS: usize = 12;
const EVAL_SWAPS: usize = 512;
const EVAL_ROUNDS: usize = 200;
const POOL_GRAPHS: usize = 24;
const POOL_NODES: usize = 20;
/// Figure 18 graph sizes timed by the warm-vs-cold comparison.
const WARM_VS_COLD_SIZES: [usize; 4] = [20, 60, 120, 240];
/// Reduce repetitions per size (mean latency is reported).
const WARM_VS_COLD_REPS: usize = 5;
const SMOKE_SEED: u64 = 0x5A0C_2026;
/// Hard CI floor on the SA hot loop. An unloaded container measures
/// ~5.5M moves/sec since the bitset connectivity shortcut (PR 7), so this
/// only fires on a genuine hot-loop regression, not scheduler noise.
const SA_MOVES_PER_SEC_FLOOR: f64 = 2_500_000.0;
/// Hard CI floor on the warm-vs-cold geomean speedup (measured ~3.2×).
const WARM_GEOMEAN_FLOOR: f64 = 2.2;
/// Hard CI floor on the largest (240-node) row's speedup (measured ~2.2×).
const WARM_LARGEST_FLOOR: f64 = 1.6;
/// Resize ladder sizes exercised by the steady-state resize measurement.
const RESIZE_LADDER: [usize; 6] = [200, 120, 170, 60, 140, 80];

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_reduction.json".to_string());

    // --- 1. SA hot loop: Metropolis steps per second. -----------------------
    let graph = bench_graph(SA_NODES, 7);
    let options = SaOptions {
        // A slow constant schedule keeps the move count high and independent
        // of the adaptive stagnation heuristics.
        cooling: CoolingSchedule::Constant(0.999),
        ..Default::default()
    };
    let start = Instant::now();
    let mut total_moves = 0usize;
    for run in 0..SA_RUNS {
        let mut rng = seeded(derive_seed(SMOKE_SEED, run as u64));
        let outcome =
            anneal_subgraph(&graph, SA_K, &options, &mut rng).expect("benchmark graph anneals");
        total_moves += outcome.iterations;
    }
    let anneal_secs = start.elapsed().as_secs_f64();
    let moves_per_sec = total_moves as f64 / anneal_secs;
    assert!(
        moves_per_sec >= SA_MOVES_PER_SEC_FLOOR,
        "SA hot loop regressed: {moves_per_sec:.0} moves/sec (floor {SA_MOVES_PER_SEC_FLOOR:.0})"
    );

    // --- 2. Move evaluation: incremental SaState vs rebuild-per-move. ------
    let target = average_node_degree(&graph);
    let mut rng = seeded(derive_seed(SMOKE_SEED, 100));
    let initial =
        random_connected_subgraph(&graph, SA_K, &mut rng).expect("benchmark subgraph samples");
    let mut state = SaState::new(&graph, &initial.nodes, target, 10.0).expect("valid selection");
    let swaps: Vec<(usize, usize)> = (0..EVAL_SWAPS)
        .map(|_| state.propose(&mut rng).expect("boundary is non-empty"))
        .collect();

    let start = Instant::now();
    let mut incremental_acc = 0.0f64;
    for _ in 0..EVAL_ROUNDS {
        for &(out, inn) in &swaps {
            incremental_acc += state.evaluate_swap(out, inn);
        }
    }
    let incremental_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut rebuild_acc = 0.0f64;
    let mut candidate = Vec::with_capacity(SA_K);
    for _ in 0..EVAL_ROUNDS {
        for &(out, inn) in &swaps {
            candidate.clear();
            candidate.extend(initial.nodes.iter().copied().filter(|&u| u != out));
            candidate.push(inn);
            rebuild_acc += rebuild_objective(&graph, &candidate, target, 10.0);
        }
    }
    let rebuild_secs = start.elapsed().as_secs_f64();
    assert!(
        (incremental_acc - rebuild_acc).abs() < 1e-6 * rebuild_acc.abs().max(1.0),
        "incremental evaluator diverged from the rebuild-per-move objective"
    );
    let evals = (EVAL_SWAPS * EVAL_ROUNDS) as f64;
    let incremental_evals_per_sec = evals / incremental_secs;
    let rebuild_evals_per_sec = evals / rebuild_secs;

    // --- 3. Steady-state resize latency (heap + one Tarjan pass/eviction). --
    let resize_graph = bench_graph(WARM_VS_COLD_SIZES[3], 2003);
    let mut scratch = ResizeScratch::default();
    let mut selection: Vec<usize> = (0..resize_graph.node_count()).collect();
    // Warm the scratch once so the measurement is the steady state the warm
    // binary search actually runs in.
    selection =
        resize_selection_with_scratch(&resize_graph, &selection, RESIZE_LADDER[0], &mut scratch)
            .expect("benchmark selection resizes");
    let start = Instant::now();
    let mut resize_calls = 0usize;
    for round in 0..20 {
        for &k in &RESIZE_LADDER[usize::from(round == 0)..] {
            selection = resize_selection_with_scratch(&resize_graph, &selection, k, &mut scratch)
                .expect("benchmark selection resizes");
            resize_calls += 1;
        }
    }
    // ~4 ms per call on an unloaded container (each ladder step moves ~90
    // nodes, one Tarjan pass per eviction); the ceiling catches a return to
    // the old per-candidate component recount (tens of ms) without flaking
    // on a loaded runner.
    let resize_ms = start.elapsed().as_secs_f64() * 1e3 / resize_calls as f64;
    assert!(
        resize_ms < 15.0,
        "resize_selection regressed: {resize_ms:.3} ms per call on a \
         {}-node graph (ceiling 15 ms)",
        resize_graph.node_count()
    );

    // --- 4. reduce_pool: graphs/sec + thread-count determinism. -------------
    let pool: Vec<graphlib::Graph> = (0..POOL_GRAPHS)
        .map(|i| bench_graph(POOL_NODES, 1000 + i as u64))
        .collect();
    let reduction_options = ReductionOptions::default();
    let start = Instant::now();
    let serial = with_threads(1, || reduce_pool(&pool, &reduction_options, SMOKE_SEED));
    let serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let threaded = with_threads(4, || reduce_pool(&pool, &reduction_options, SMOKE_SEED));
    let threaded_secs = start.elapsed().as_secs_f64();
    let identical = serial.len() == threaded.len()
        && serial.iter().zip(&threaded).all(|(a, b)| match (a, b) {
            (Ok(a), Ok(b)) => {
                a.subgraph.nodes == b.subgraph.nodes
                    && a.and_ratio.to_bits() == b.and_ratio.to_bits()
                    && a.node_reduction.to_bits() == b.node_reduction.to_bits()
            }
            (Err(a), Err(b)) => a == b,
            _ => false,
        });
    assert!(
        identical,
        "parallel reduce_pool diverged from the serial reference"
    );
    let serial_gps = POOL_GRAPHS as f64 / serial_secs;
    let threaded_gps = POOL_GRAPHS as f64 / threaded_secs;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // On a single hardware thread the 4-worker pool can only add overhead,
    // so the speedup assertion is meaningless there; with real cores the
    // pool must at least not be slower than serial by more than noise.
    if cores > 1 {
        let pool_speedup = serial_secs / threaded_secs;
        assert!(
            pool_speedup >= 1.05,
            "4-thread reduce_pool is not faster than serial on a {cores}-core \
             runner: speedup {pool_speedup:.3}"
        );
    }

    // --- 5. Warm-started vs cold-started `reduce` at the Figure 18 sizes. ---
    let mut warm_vs_cold_rows = Vec::new();
    let mut speedup_product = 1.0f64;
    for (s_idx, &n) in WARM_VS_COLD_SIZES.iter().enumerate() {
        let graph = bench_graph(n, 2000 + s_idx as u64);
        let timed = |warm_start: WarmStart| {
            let options = ReductionOptions {
                warm_start,
                ..Default::default()
            };
            let start = Instant::now();
            let mut and_ratio_sum = 0.0f64;
            for rep in 0..WARM_VS_COLD_REPS {
                let mut rng = seeded(derive_seed(SMOKE_SEED, 3000 + rep as u64));
                let reduced = reduce(&graph, &options, &mut rng).expect("benchmark graph reduces");
                and_ratio_sum += reduced.and_ratio;
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / WARM_VS_COLD_REPS as f64;
            (ms, and_ratio_sum / WARM_VS_COLD_REPS as f64)
        };
        let (cold_ms, cold_and) = timed(WarmStart::Off);
        let (warm_ms, warm_and) = timed(WarmStart::On);
        let speedup = cold_ms / warm_ms;
        assert!(
            warm_and >= DEFAULT_AND_RATIO_THRESHOLD - 1e-9,
            "warm-started reduce missed the AND threshold at {n} nodes: {warm_and}"
        );
        assert!(
            cold_and >= DEFAULT_AND_RATIO_THRESHOLD - 1e-9,
            "cold-started reduce missed the AND threshold at {n} nodes: {cold_and}"
        );
        // The warm search may not buy its speed with quality: its mean AND
        // ratio must match or beat the cold search at every size.
        assert!(
            warm_and >= cold_and - 1e-9,
            "warm-started reduce lost AND quality at {n} nodes: warm {warm_and} < cold {cold_and}"
        );
        // The default `Measured` policy's decision at this size, recorded so
        // the perf trajectory shows when the measured comparison reverts.
        let mut rng = seeded(derive_seed(SMOKE_SEED, 4000 + s_idx as u64));
        let measured = reduce(&graph, &ReductionOptions::default(), &mut rng)
            .expect("benchmark graph reduces");
        let decision = match measured.warm_decision {
            WarmDecision::Cold => "cold",
            WarmDecision::Warm => "warm",
            WarmDecision::MeasuredKept => "measured_kept",
            WarmDecision::MeasuredReverted => "measured_reverted",
        };
        speedup_product *= speedup;
        warm_vs_cold_rows.push(format!(
            concat!(
                "    {{ \"nodes\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, ",
                "\"speedup\": {:.3}, \"cold_and_ratio\": {:.4}, \"warm_and_ratio\": {:.4}, ",
                "\"measured_decision\": \"{}\" }}"
            ),
            n, cold_ms, warm_ms, speedup, cold_and, warm_and, decision
        ));
        if n == WARM_VS_COLD_SIZES[WARM_VS_COLD_SIZES.len() - 1] {
            assert!(
                speedup >= WARM_LARGEST_FLOOR,
                "warm-start speedup regressed at {n} nodes: {speedup:.3} \
                 (floor {WARM_LARGEST_FLOOR})"
            );
        }
    }
    let warm_speedup_geomean = speedup_product.powf(1.0 / WARM_VS_COLD_SIZES.len() as f64);
    // An unloaded container measures ~3.2× geomean since the degeneracy
    // first seed and the bitset connectivity shortcut (PR 7); the 2.2× floor
    // leaves room for scheduler noise while still catching any genuine
    // warm-path regression.
    assert!(
        warm_speedup_geomean >= WARM_GEOMEAN_FLOOR,
        "warm-start speedup regressed: {warm_speedup_geomean:.3} (floor {WARM_GEOMEAN_FLOOR})"
    );
    let warm_vs_cold_json = warm_vs_cold_rows.join(",\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"reduction_smoke\",\n",
            "  \"available_cores\": {},\n",
            "  \"sa_nodes\": {},\n",
            "  \"sa_subgraph_size\": {},\n",
            "  \"sa_runs\": {},\n",
            "  \"sa_total_moves\": {},\n",
            "  \"sa_moves_per_sec\": {:.2},\n",
            "  \"sa_moves_per_sec_floor\": {:.0},\n",
            "  \"move_evals\": {},\n",
            "  \"incremental_evals_per_sec\": {:.2},\n",
            "  \"rebuild_evals_per_sec\": {:.2},\n",
            "  \"incremental_speedup_vs_rebuild\": {:.3},\n",
            "  \"resize_graph_nodes\": {},\n",
            "  \"resize_calls\": {},\n",
            "  \"resize_ms\": {:.4},\n",
            "  \"pool_graphs\": {},\n",
            "  \"pool_graph_nodes\": {},\n",
            "  \"serial_graphs_per_sec\": {:.3},\n",
            "  \"threads4_graphs_per_sec\": {:.3},\n",
            "  \"pool_speedup_4_threads\": {:.3},\n",
            "  \"bitwise_identical\": true,\n",
            "  \"warm_vs_cold\": [\n{}\n  ],\n",
            "  \"warm_vs_cold_reps\": {},\n",
            "  \"warm_speedup_geomean\": {:.3},\n",
            "  \"warm_speedup_geomean_floor\": {:.1},\n",
            "  \"warm_speedup_largest_floor\": {:.1}\n",
            "}}\n"
        ),
        cores,
        SA_NODES,
        SA_K,
        SA_RUNS,
        total_moves,
        moves_per_sec,
        SA_MOVES_PER_SEC_FLOOR,
        EVAL_SWAPS * EVAL_ROUNDS,
        incremental_evals_per_sec,
        rebuild_evals_per_sec,
        incremental_evals_per_sec / rebuild_evals_per_sec,
        resize_graph.node_count(),
        resize_calls,
        resize_ms,
        POOL_GRAPHS,
        POOL_NODES,
        serial_gps,
        threaded_gps,
        serial_secs / threaded_secs,
        warm_vs_cold_json,
        WARM_VS_COLD_REPS,
        warm_speedup_geomean,
        WARM_GEOMEAN_FLOOR,
        WARM_LARGEST_FLOOR,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
