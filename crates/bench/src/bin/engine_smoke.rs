//! CI perf smoke for the `red_qaoa::engine` batch front door: cold-cache vs
//! warm-cache batch throughput.
//!
//! The measurement mirrors the "millions of users, same hot graphs"
//! scenario the engine's reduction cache exists for: a mixed batch (reduce +
//! throughput jobs) over a pool of distinct graphs is run once cold and then
//! several times warm (best time taken) through one engine. The cold run
//! anneals every reduction; the warm runs must serve every reduction from
//! the content-hash cache — which is asserted three ways:
//!
//! 1. the two runs' outputs are identical (`JobOutput: PartialEq`),
//! 2. the cache counters show `misses == distinct graphs` after the cold
//!    run and no further misses after the warm run,
//! 3. the warm batch is dramatically faster (≥ 5× is asserted as a CI
//!    tripwire; a cache hit is a hash lookup + clone, so an unloaded
//!    container measures orders of magnitude more).
//!
//! Results are written to `BENCH_engine.json` so the repository's perf
//! trajectory records batch jobs/sec with and without a hot cache.
//!
//! Usage: `engine_smoke [output.json]` (default `BENCH_engine.json`).

use bench::bench_graph;
use red_qaoa::engine::{Engine, Job, ReduceJob, ThroughputJob};
use std::time::Instant;

/// Distinct graphs in the pool.
const GRAPHS: usize = 16;
/// Nodes per pooled graph.
const NODES: usize = 20;
/// Each graph appears once as a reduce job and once per device as a
/// throughput job, so even the *cold* batch exercises intra-batch sharing.
const DEVICE_QUBITS: [usize; 2] = [27, 65];
const SMOKE_SEED: u64 = 0xE61E_2026;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    // One worker pins the hit/miss counters the assertions below rely on:
    // with more, two jobs can race on the same key and both count a miss
    // (results would still be identical — counters are telemetry, not
    // contract). The CI container is 1-core, so this costs nothing there.
    let engine = Engine::builder()
        .threads(1)
        .build()
        .expect("default engine config");
    let graphs: Vec<graphlib::Graph> = (0..GRAPHS)
        .map(|i| bench_graph(NODES, 4000 + i as u64))
        .collect();
    let mut jobs: Vec<Job> = Vec::new();
    for graph in &graphs {
        jobs.push(Job::Reduce(ReduceJob::new(graph.clone())));
        for &qubits in &DEVICE_QUBITS {
            jobs.push(Job::Throughput(ThroughputJob::new(
                graph.clone(),
                qubits,
                1,
            )));
        }
    }

    // --- Cold batch: every reduction anneals. -------------------------------
    let start = Instant::now();
    let cold = engine.run_batch(&jobs, SMOKE_SEED);
    let cold_secs = start.elapsed().as_secs_f64();
    assert!(cold.iter().all(|r| r.is_ok()), "cold batch must succeed");
    let cold_stats = engine.cache_stats();
    assert_eq!(
        cold_stats.misses as usize, GRAPHS,
        "each distinct graph anneals exactly once in the cold batch \
         (got {} misses)",
        cold_stats.misses
    );

    // --- Warm batches: every reduction is a cache hit. ----------------------
    // A single warm batch finishes in well under a millisecond, so one
    // scheduler preemption could flake the speedup gate on a loaded runner;
    // best-of-N keeps the tripwire sharp without the noise exposure.
    const WARM_RUNS: usize = 5;
    let mut warm_secs = f64::INFINITY;
    let mut warm = Vec::new();
    for _ in 0..WARM_RUNS {
        let start = Instant::now();
        warm = engine.run_batch(&jobs, SMOKE_SEED);
        warm_secs = warm_secs.min(start.elapsed().as_secs_f64());
    }
    let warm_stats = engine.cache_stats();
    assert_eq!(
        warm_stats.misses, cold_stats.misses,
        "the warm batch must not re-anneal anything"
    );
    assert_eq!(
        cold, warm,
        "cache hits must return the identical outputs the cold batch computed"
    );

    let jobs_total = jobs.len();
    let cold_jps = jobs_total as f64 / cold_secs;
    let warm_jps = jobs_total as f64 / warm_secs;
    let speedup = cold_secs / warm_secs;
    assert!(
        speedup >= 5.0,
        "warm-cache batch speedup regressed catastrophically: {speedup:.1}x \
         (a cache hit must not re-anneal)"
    );

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine_smoke\",\n",
            "  \"available_cores\": {},\n",
            "  \"pool_graphs\": {},\n",
            "  \"pool_graph_nodes\": {},\n",
            "  \"jobs_per_batch\": {},\n",
            "  \"cold_batch_ms\": {:.3},\n",
            "  \"warm_batch_ms\": {:.3},\n",
            "  \"cold_jobs_per_sec\": {:.2},\n",
            "  \"warm_jobs_per_sec\": {:.2},\n",
            "  \"warm_speedup\": {:.2},\n",
            "  \"cache_hits\": {},\n",
            "  \"cache_misses\": {},\n",
            "  \"cache_entries\": {},\n",
            "  \"outputs_identical\": true\n",
            "}}\n"
        ),
        cores,
        GRAPHS,
        NODES,
        jobs_total,
        cold_secs * 1e3,
        warm_secs * 1e3,
        cold_jps,
        warm_jps,
        speedup,
        warm_stats.hits,
        warm_stats.misses,
        warm_stats.entries,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
