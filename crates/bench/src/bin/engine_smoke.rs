//! CI perf smoke for the `red_qaoa::engine` batch front door: cold-cache vs
//! warm-cache batch throughput.
//!
//! The measurement mirrors the "millions of users, same hot graphs"
//! scenario the engine's reduction cache exists for: a mixed batch (reduce +
//! throughput jobs) over a pool of distinct graphs is run once cold and then
//! several times warm (best time taken) through one engine. The cold run
//! anneals every reduction; the warm runs must serve every reduction from
//! the content-hash cache — which is asserted three ways:
//!
//! 1. the two runs' outputs are identical (`JobOutput: PartialEq`),
//! 2. the cache counters show `misses == distinct graphs` after the cold
//!    run and no further misses after the warm run,
//! 3. the warm batch is dramatically faster (≥ 5× is asserted as a CI
//!    tripwire; a cache hit is a hash lookup + clone, so an unloaded
//!    container measures orders of magnitude more).
//!
//! Two further sections mirror the service-tier story (PR 8):
//!
//! - **Sustained load**: a stream of 96 individual `engine.run` calls cycling
//!   through a 12-graph pool records per-job latency and the cache-hit-rate
//!   trajectory. The first pass over the pool is the cold phase; everything
//!   after is warm. Gates: warm-phase p99 ≤ cold-phase p50, final hit rate
//!   ≥ 0.7 (the stream's true rate is 84/96 = 0.875).
//! - **Persistence**: an engine with `persist_path` writes its reductions to
//!   a tmpfile; a second engine reopening that file must start warm — every
//!   request a hit, outputs bitwise-identical to the writer's.
//!
//! Results are written to `BENCH_engine.json` so the repository's perf
//! trajectory records batch jobs/sec with and without a hot cache.
//!
//! Usage: `engine_smoke [output.json]` (default `BENCH_engine.json`).

use bench::bench_graph;
use red_qaoa::engine::{Engine, Job, ReduceJob, ThroughputJob};
use std::time::Instant;

/// Distinct graphs cycled through by the sustained-load stream.
const SUSTAINED_POOL: usize = 12;
/// Nodes per sustained-pool graph.
const SUSTAINED_NODES: usize = 18;
/// Individual `engine.run` calls in the sustained stream.
const SUSTAINED_JOBS: usize = 96;

/// Nearest-rank percentile (q in [0, 1]) of an unsorted latency sample.
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 * q).ceil() as usize).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// One pass of the sustained-load stream on a fresh engine. Returns
/// (cold-phase latencies µs, warm-phase latencies µs, hit-rate trajectory
/// sampled after every pool-sized window, final hit rate).
fn sustained_stream() -> (Vec<f64>, Vec<f64>, Vec<f64>, f64) {
    let engine = Engine::builder()
        .threads(1)
        .build()
        .expect("default engine config");
    let pool: Vec<graphlib::Graph> = (0..SUSTAINED_POOL)
        .map(|i| bench_graph(SUSTAINED_NODES, 5000 + i as u64))
        .collect();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    let mut trajectory = Vec::new();
    for i in 0..SUSTAINED_JOBS {
        let graph = pool[i % SUSTAINED_POOL].clone();
        // Alternate job kinds so the stream is mixed, not homogeneous.
        let job = if i % 2 == 0 {
            Job::Reduce(ReduceJob::new(graph))
        } else {
            Job::Throughput(ThroughputJob::new(graph, 27, 1))
        };
        let start = Instant::now();
        engine.run(&job, i as u64).expect("sustained job succeeds");
        let micros = start.elapsed().as_secs_f64() * 1e6;
        if i < SUSTAINED_POOL {
            cold.push(micros);
        } else {
            warm.push(micros);
        }
        if (i + 1) % SUSTAINED_POOL == 0 {
            trajectory.push(engine.cache_stats().hit_rate());
        }
    }
    let final_rate = engine.cache_stats().hit_rate();
    (cold, warm, trajectory, final_rate)
}

/// Distinct graphs in the pool.
const GRAPHS: usize = 16;
/// Nodes per pooled graph.
const NODES: usize = 20;
/// Each graph appears once as a reduce job and once per device as a
/// throughput job, so even the *cold* batch exercises intra-batch sharing.
const DEVICE_QUBITS: [usize; 2] = [27, 65];
const SMOKE_SEED: u64 = 0xE61E_2026;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    // One worker pins the hit/miss counters the assertions below rely on:
    // with more, two jobs can race on the same key and both count a miss
    // (results would still be identical — counters are telemetry, not
    // contract). The CI container is 1-core, so this costs nothing there.
    let engine = Engine::builder()
        .threads(1)
        .build()
        .expect("default engine config");
    let graphs: Vec<graphlib::Graph> = (0..GRAPHS)
        .map(|i| bench_graph(NODES, 4000 + i as u64))
        .collect();
    let mut jobs: Vec<Job> = Vec::new();
    for graph in &graphs {
        jobs.push(Job::Reduce(ReduceJob::new(graph.clone())));
        for &qubits in &DEVICE_QUBITS {
            jobs.push(Job::Throughput(ThroughputJob::new(
                graph.clone(),
                qubits,
                1,
            )));
        }
    }

    // --- Cold batch: every reduction anneals. -------------------------------
    let start = Instant::now();
    let cold = engine.run_batch(&jobs, SMOKE_SEED);
    let cold_secs = start.elapsed().as_secs_f64();
    assert!(cold.iter().all(|r| r.is_ok()), "cold batch must succeed");
    let cold_stats = engine.cache_stats();
    assert_eq!(
        cold_stats.misses as usize, GRAPHS,
        "each distinct graph anneals exactly once in the cold batch \
         (got {} misses)",
        cold_stats.misses
    );

    // --- Warm batches: every reduction is a cache hit. ----------------------
    // A single warm batch finishes in well under a millisecond, so one
    // scheduler preemption could flake the speedup gate on a loaded runner;
    // best-of-N keeps the tripwire sharp without the noise exposure.
    const WARM_RUNS: usize = 5;
    let mut warm_secs = f64::INFINITY;
    let mut warm = Vec::new();
    for _ in 0..WARM_RUNS {
        let start = Instant::now();
        warm = engine.run_batch(&jobs, SMOKE_SEED);
        warm_secs = warm_secs.min(start.elapsed().as_secs_f64());
    }
    let warm_stats = engine.cache_stats();
    assert_eq!(
        warm_stats.misses, cold_stats.misses,
        "the warm batch must not re-anneal anything"
    );
    assert_eq!(
        cold, warm,
        "cache hits must return the identical outputs the cold batch computed"
    );

    let jobs_total = jobs.len();
    let cold_jps = jobs_total as f64 / cold_secs;
    let warm_jps = jobs_total as f64 / warm_secs;
    let speedup = cold_secs / warm_secs;
    assert!(
        speedup >= 5.0,
        "warm-cache batch speedup regressed catastrophically: {speedup:.1}x \
         (a cache hit must not re-anneal)"
    );

    // --- Sustained load: latency percentiles + hit-rate trajectory. ---------
    // The per-job latencies are single-shot (re-running a job would flip it
    // from miss to hit), so a scheduler blip on a loaded runner can inflate
    // one percentile; retry the whole stream a couple of times before
    // declaring a regression.
    const SUSTAINED_ATTEMPTS: usize = 3;
    let mut sustained = sustained_stream();
    for _ in 1..SUSTAINED_ATTEMPTS {
        let (ref cold_lat, ref warm_lat, _, _) = sustained;
        if percentile(warm_lat, 0.99) <= percentile(cold_lat, 0.50) {
            break;
        }
        sustained = sustained_stream();
    }
    let (cold_lat, warm_lat, trajectory, final_hit_rate) = sustained;
    let (cold_p50, cold_p99) = (percentile(&cold_lat, 0.50), percentile(&cold_lat, 0.99));
    let (warm_p50, warm_p99) = (percentile(&warm_lat, 0.50), percentile(&warm_lat, 0.99));
    assert!(
        warm_p99 <= cold_p50,
        "sustained-load warm p99 ({warm_p99:.1}µs) must beat cold p50 \
         ({cold_p50:.1}µs): cache hits are lookups, misses anneal"
    );
    assert!(
        final_hit_rate >= 0.7,
        "sustained-load hit rate regressed: {final_hit_rate:.3} < 0.7"
    );

    // --- Persistence: a second engine reopening the store starts warm. ------
    let store =
        std::env::temp_dir().join(format!("engine_smoke_persist_{}.rqps", std::process::id()));
    let _ = std::fs::remove_file(&store);
    let persist_graphs: Vec<graphlib::Graph> = (0..4)
        .map(|i| bench_graph(NODES, 7000 + i as u64))
        .collect();
    let writer = Engine::builder()
        .threads(1)
        .persist_path(&store)
        .build()
        .expect("persisting engine");
    let written: Vec<_> = persist_graphs
        .iter()
        .map(|g| {
            writer
                .run(&Job::Reduce(ReduceJob::new(g.clone())), 1)
                .expect("persisted reduce succeeds")
        })
        .collect();
    drop(writer);
    let reader = Engine::builder()
        .threads(1)
        .persist_path(&store)
        .build()
        .expect("reopening engine");
    let persist_reopen_entries = reader.cache_stats().entries;
    let reread: Vec<_> = persist_graphs
        .iter()
        .map(|g| {
            reader
                .run(&Job::Reduce(ReduceJob::new(g.clone())), 2)
                .expect("reopened reduce succeeds")
        })
        .collect();
    let persist_reopen_hits = reader.cache_stats().hits;
    let _ = std::fs::remove_file(&store);
    assert_eq!(
        persist_reopen_entries as usize,
        persist_graphs.len(),
        "the reopened store must warm the cache with every written reduction"
    );
    assert_eq!(
        persist_reopen_hits as usize,
        persist_graphs.len(),
        "every reopened request must be served from the warmed cache"
    );
    assert_eq!(
        written, reread,
        "reductions served from disk must be bitwise-identical"
    );

    let trajectory_json = trajectory
        .iter()
        .map(|r| format!("{r:.4}"))
        .collect::<Vec<_>>()
        .join(", ");

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"engine_smoke\",\n",
            "  \"available_cores\": {},\n",
            "  \"pool_graphs\": {},\n",
            "  \"pool_graph_nodes\": {},\n",
            "  \"jobs_per_batch\": {},\n",
            "  \"cold_batch_ms\": {:.3},\n",
            "  \"warm_batch_ms\": {:.3},\n",
            "  \"cold_jobs_per_sec\": {:.2},\n",
            "  \"warm_jobs_per_sec\": {:.2},\n",
            "  \"warm_speedup\": {:.2},\n",
            "  \"cache_hits\": {},\n",
            "  \"cache_misses\": {},\n",
            "  \"cache_entries\": {},\n",
            "  \"outputs_identical\": true,\n",
            "  \"sustained_jobs\": {},\n",
            "  \"sustained_pool_graphs\": {},\n",
            "  \"sustained_cold_p50_us\": {:.1},\n",
            "  \"sustained_cold_p99_us\": {:.1},\n",
            "  \"sustained_warm_p50_us\": {:.1},\n",
            "  \"sustained_warm_p99_us\": {:.1},\n",
            "  \"sustained_hit_rate_trajectory\": [{}],\n",
            "  \"sustained_final_hit_rate\": {:.4},\n",
            "  \"persist_reopen_entries\": {},\n",
            "  \"persist_reopen_hits\": {},\n",
            "  \"persist_outputs_identical\": true\n",
            "}}\n"
        ),
        cores,
        GRAPHS,
        NODES,
        jobs_total,
        cold_secs * 1e3,
        warm_secs * 1e3,
        cold_jps,
        warm_jps,
        speedup,
        warm_stats.hits,
        warm_stats.misses,
        warm_stats.entries,
        SUSTAINED_JOBS,
        SUSTAINED_POOL,
        cold_p50,
        cold_p99,
        warm_p50,
        warm_p99,
        trajectory_json,
        final_hit_rate,
        persist_reopen_entries,
        persist_reopen_hits,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
