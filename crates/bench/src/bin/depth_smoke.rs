//! CI perf smoke: depth-reduction subsystem headline numbers.
//!
//! Two sections, both asserted:
//!
//! * **Scheduling** — for random `d`-regular graphs with `d ∈ {3, 4, 6}`
//!   the greedy interaction scheduler must pack the cost layer's `RZZ`
//!   terms into at most `d + 1` rounds (the Vizing edge-coloring bound),
//!   and the two-qubit depth reduction versus the naive sequential
//!   emission (one round per gate, `|E|` rounds) must be **≥ 2×** — the
//!   headline acceptance number of the depth subsystem.
//! * **Compound MSE** — the four circuit-reduction arms (baseline /
//!   node-only / depth-only / node+depth) run on one random graph at equal
//!   trajectory counts with common random numbers
//!   ([`red_qaoa::mse::compound_grid_comparison`]); the compound arm's
//!   noisy-landscape MSE must be **no worse than the node-only arm's**,
//!   i.e. composing depth scheduling on top of node reduction never costs
//!   noisy fidelity at matched sampling budgets.
//!
//! Usage: `depth_smoke [output.json]` (default `BENCH_depth.json`).

use bench::{bench_graph, BENCH_SEED};
use graphlib::generators::random_regular;
use mathkit::rng::{derive_seed, seeded};
use qaoa::depth::compile_maxcut;
use qsim::devices::fake_toronto;
use red_qaoa::mse::compound_grid_comparison;
use red_qaoa::reduction::{reduce, ReductionOptions};

/// Degrees of the regular-graph scheduling rows.
const DEGREES: [usize; 3] = [3, 4, 6];
/// Node count of the regular test graphs (even, so every degree is valid).
const REGULAR_NODES: usize = 24;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_depth.json".to_string());

    // --- scheduling rows --------------------------------------------------
    let mut row_json = Vec::new();
    let mut min_reduction = f64::INFINITY;
    for (i, &d) in DEGREES.iter().enumerate() {
        let mut rng = seeded(derive_seed(BENCH_SEED, 9_000 + i as u64));
        let graph = random_regular(REGULAR_NODES, d, &mut rng).expect("valid regular graph");
        let schedule = compile_maxcut(&graph).expect("non-degenerate graph compiles");
        let m = schedule.metrics();
        assert!(
            m.rounds <= d + 1,
            "{d}-regular graph scheduled into {} rounds, Vizing bound is {}",
            m.rounds,
            d + 1
        );
        assert!(m.meets_vizing_bound());
        let reduction = m.depth_reduction();
        min_reduction = min_reduction.min(reduction);
        row_json.push(format!(
            concat!(
                "    {{ \"degree\": {}, \"nodes\": {}, \"terms\": {}, ",
                "\"rounds\": {}, \"naive_depth\": {}, ",
                "\"depth_reduction\": {:.3}, \"vizing_bound\": {} }}"
            ),
            d,
            REGULAR_NODES,
            m.scheduled_terms,
            m.rounds,
            m.naive_depth,
            reduction,
            d + 1
        ));
    }
    assert!(
        min_reduction >= 2.0,
        "two-qubit depth reduction vs naive sequential emission must be >= 2x, \
         got {min_reduction:.3}x"
    );

    // --- compound-MSE section ---------------------------------------------
    let graph = bench_graph(11, 8_100);
    let mut rng = seeded(derive_seed(BENCH_SEED, 8_200));
    let reduced = reduce(&graph, &ReductionOptions::default(), &mut rng).expect("graph reduces");
    let noise = fake_toronto().noise;
    let trajectories = 16usize;
    let cmp = compound_grid_comparison(&graph, reduced.graph(), 6, &noise, trajectories, &mut rng)
        .expect("compound comparison runs");
    assert!(
        cmp.compound_mse <= cmp.node_mse,
        "node+depth noisy MSE ({:.6}) must not exceed node-only noisy MSE ({:.6}) \
         at {trajectories} trajectories",
        cmp.compound_mse,
        cmp.node_mse
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"depth_smoke\",\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"min_depth_reduction\": {:.3},\n",
            "  \"compound\": {{\n",
            "    \"nodes\": {},\n",
            "    \"reduced_nodes\": {},\n",
            "    \"width\": 6,\n",
            "    \"trajectories\": {},\n",
            "    \"baseline_mse\": {:.6},\n",
            "    \"node_mse\": {:.6},\n",
            "    \"depth_mse\": {:.6},\n",
            "    \"compound_mse\": {:.6},\n",
            "    \"full_rounds\": {},\n",
            "    \"full_naive_depth\": {},\n",
            "    \"reduced_rounds\": {}\n",
            "  }},\n",
            "  \"asserted\": {{\n",
            "    \"rounds_le_d_plus_1\": true,\n",
            "    \"depth_reduction_ge_2x\": true,\n",
            "    \"compound_mse_le_node_mse\": true\n",
            "  }}\n",
            "}}\n"
        ),
        row_json.join(",\n"),
        min_reduction,
        graph.node_count(),
        reduced.graph().node_count(),
        trajectories,
        cmp.baseline_mse,
        cmp.node_mse,
        cmp.depth_mse,
        cmp.compound_mse,
        cmp.full_depth.rounds,
        cmp.full_depth.naive_depth,
        cmp.reduced_depth.rounds,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
