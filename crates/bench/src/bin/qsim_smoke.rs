//! CI perf smoke: statevector kernel throughput, scalar vs vectorized.
//!
//! For qubit counts 8–20 a routed-QAOA gate workload — H wall, then per
//! layer a **linear swap-network cost layer** (the canonical compilation of
//! a dense problem graph onto nearest-neighbour connectivity: `n` rounds of
//! adjacent `RZZ` + `SWAP`, realizing all `n(n-1)/2` pairs) followed by the
//! `Rx` mixer wall, plus a CNOT/CZ entangler tail so every kernel family
//! the simulator implements is exercised — is timed under
//! `KernelMode::Scalar` and `KernelMode::Vectorized`, reporting
//! gate-ops/sec per kernel and the speedup. Dense-graph QAOA routed through
//! swap networks is exactly the regime the source paper targets, and its
//! two-qubit-heavy gate mix is where the chunked kernels' quadrant
//! decomposition (touching only affected runs, no per-index bit tests)
//! pays off. The two evolutions are cross-checked bitwise first (the same
//! contract `tests/qsim_kernel_equivalence.rs` proves at scale), and the
//! 16-qubit row must show a **≥ 1.5× vectorized speedup** — the headline
//! acceptance number of the kernel split.
//!
//! A per-core scaling section then times a 16-node landscape grid at one
//! worker and at `min(4, cores)` workers; whenever the machine actually has
//! more than one core, the multi-thread run must be **≥ 2× faster** —
//! finishing the ROADMAP's multi-core story with a real assertion instead
//! of a recorded-but-unchecked ratio.
//!
//! Usage: `qsim_smoke [output.json]` (default `BENCH_qsim.json`).

use bench::bench_graph;
use mathkit::parallel::with_threads;
use qaoa::evaluator::StatevectorEvaluator;
use qaoa::landscape::Landscape;
use qsim::circuit::{Circuit, Gate};
use qsim::statevector::{with_kernel, KernelMode, StateVector};
use std::time::Instant;

/// Qubit counts of the throughput rows and repetitions per row (chosen so
/// each measurement runs long enough to time reliably at every size).
const ROWS: [(usize, usize); 4] = [(8, 150), (12, 30), (16, 6), (20, 1)];

/// Routed-QAOA workload: per layer, a linear swap-network cost layer
/// (odd–even rounds of adjacent `RZZ` + `SWAP` realizing every qubit pair
/// on nearest-neighbour connectivity) followed by the `Rx` mixer wall, with
/// a CNOT/CZ entangler tail covering the remaining kernel families.
fn workload(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q)).unwrap();
    }
    for layer in 0..2 {
        for round in 0..n {
            let mut q = round % 2;
            while q + 1 < n {
                let theta = 0.31 + 0.07 * layer as f64 + 0.01 * round as f64;
                c.push(Gate::Rzz(q, q + 1, theta)).unwrap();
                c.push(Gate::Swap(q, q + 1)).unwrap();
                q += 2;
            }
        }
        for q in 0..n {
            c.push(Gate::Rx(q, 0.83 - 0.05 * layer as f64)).unwrap();
        }
    }
    c.push(Gate::Cnot(0, n / 2)).unwrap();
    c.push(Gate::Cz(1, n - 1)).unwrap();
    c
}

/// Applies `circuit` `reps` times (reinitializing in between) under the
/// given kernel and returns (elapsed seconds, final expectation bits).
fn timed_evolutions(circuit: &Circuit, reps: usize, mode: KernelMode) -> (f64, u64) {
    with_kernel(mode, || {
        let mut sv = StateVector::new(circuit.qubit_count());
        let mut last_bits = 0u64;
        let start = Instant::now();
        for _ in 0..reps {
            sv.reinitialize_zero(circuit.qubit_count());
            sv.apply_circuit(circuit);
            last_bits = sv.expectation_z(0).to_bits();
        }
        (start.elapsed().as_secs_f64(), last_bits)
    })
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_qsim.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // --- kernel throughput rows ------------------------------------------
    let mut row_json = Vec::new();
    let mut speedup_16q = 0.0f64;
    for (n, reps) in ROWS {
        let circuit = workload(n);
        // Bitwise cross-check before timing: both kernels must produce the
        // same amplitudes on this workload or the speedup is meaningless.
        let scalar_state = with_kernel(KernelMode::Scalar, || StateVector::from_circuit(&circuit));
        let vector_state = with_kernel(KernelMode::Vectorized, || {
            StateVector::from_circuit(&circuit)
        });
        let identical = scalar_state
            .amplitudes()
            .iter()
            .zip(vector_state.amplitudes())
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
        assert!(identical, "kernels diverged on the {n}-qubit workload");

        // Warm both paths once, then time.
        timed_evolutions(&circuit, 1, KernelMode::Scalar);
        timed_evolutions(&circuit, 1, KernelMode::Vectorized);
        let (scalar_secs, scalar_bits) = timed_evolutions(&circuit, reps, KernelMode::Scalar);
        let (vector_secs, vector_bits) = timed_evolutions(&circuit, reps, KernelMode::Vectorized);
        assert_eq!(
            scalar_bits, vector_bits,
            "expectation bits diverged at {n} qubits"
        );

        let gate_ops = (circuit.gates().len() * reps) as f64;
        let scalar_gops = gate_ops / scalar_secs;
        let vector_gops = gate_ops / vector_secs;
        let speedup = vector_gops / scalar_gops;
        if n == 16 {
            speedup_16q = speedup;
        }
        row_json.push(format!(
            concat!(
                "    {{ \"qubits\": {}, \"gate_ops\": {}, ",
                "\"scalar_gate_ops_per_sec\": {:.1}, ",
                "\"vectorized_gate_ops_per_sec\": {:.1}, ",
                "\"speedup\": {:.3} }}"
            ),
            n, gate_ops as u64, scalar_gops, vector_gops, speedup
        ));
    }
    assert!(
        speedup_16q >= 1.5,
        "vectorized kernels must be >= 1.5x scalar at 16 qubits, got {speedup_16q:.3}x"
    );

    // --- per-core scaling section ----------------------------------------
    let graph = bench_graph(16, 16);
    let evaluator = StatevectorEvaluator::new(&graph, 1).expect("16-node graph is simulable");
    let width = 16usize;
    let points = width * width;
    let multi = cores.clamp(2, 4);
    let serial_start = Instant::now();
    let serial = with_threads(1, || Landscape::evaluate(width, &evaluator));
    let serial_secs = serial_start.elapsed().as_secs_f64();
    let multi_start = Instant::now();
    let parallel = with_threads(multi, || Landscape::evaluate(width, &evaluator));
    let multi_secs = multi_start.elapsed().as_secs_f64();
    let identical = serial
        .values
        .iter()
        .zip(&parallel.values)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "multi-thread landscape diverged from serial");
    let scaling_speedup = serial_secs / multi_secs;
    if cores > 1 {
        assert!(
            scaling_speedup >= 2.0,
            "with {cores} cores the {multi}-thread landscape must be >= 2x serial, \
             got {scaling_speedup:.3}x"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"qsim_kernel_smoke\",\n",
            "  \"available_cores\": {},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"speedup_16q\": {:.3},\n",
            "  \"scaling\": {{\n",
            "    \"nodes\": 16,\n",
            "    \"width\": {},\n",
            "    \"points\": {},\n",
            "    \"multi_threads\": {},\n",
            "    \"serial_points_per_sec\": {:.2},\n",
            "    \"multi_points_per_sec\": {:.2},\n",
            "    \"multi_thread_speedup\": {:.3},\n",
            "    \"asserted_ge_2x\": {}\n",
            "  }},\n",
            "  \"bitwise_identical\": true\n",
            "}}\n"
        ),
        cores,
        row_json.join(",\n"),
        speedup_16q,
        width,
        points,
        multi,
        points as f64 / serial_secs,
        points as f64 / multi_secs,
        scaling_speedup,
        cores > 1,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
