//! CI perf smoke for the engine's end-to-end optimization sessions
//! (`OptimizeJob`): the paper's actual workload — optimize on the reduced
//! graph, re-score on the full graph — measured against the full-graph
//! baseline the job runs internally.
//!
//! Three properties are asserted as CI tripwires:
//!
//! 1. **Quality**: the reduced path's best transferred value reaches at
//!    least 0.95× the baseline's best (the paper reports ≈ 1.0; the bound
//!    leaves slack for the scaled-down protocol),
//! 2. **Cost**: under the exact-simulation cost model (one evaluation on a
//!    k-node graph costs 2^k), the reduced path's full-graph-equivalent
//!    evaluation cost is strictly below the baseline's,
//! 3. **Early stopping**: an [`qaoa::optimize::OptimizeDriver`] with a
//!    target value stops with no more evaluations than the uncapped
//!    session.
//!
//! Results are written to `BENCH_optimize.json`: per-session latency, the
//! reduced-vs-baseline ratio, the cost ratio, and evaluations-to-target.
//!
//! Usage: `optimize_smoke [output.json]` (default `BENCH_optimize.json`).

use bench::bench_graph;
use qaoa::evaluator::StatevectorEvaluator;
use qaoa::optimize::{NelderMeadOptimizer, OptimizeDriver};
use red_qaoa::engine::{Engine, Job, OptimizeJob};
use std::time::Instant;

/// Distinct graphs in the session pool.
const GRAPHS: usize = 6;
/// Nodes per pooled graph (brute-forceable: every session gets a ground
/// truth and exact approximation ratios).
const NODES: usize = 12;
/// Restarts per session (both the reduced and the baseline side).
const RESTARTS: usize = 3;
/// Iteration budget per restart.
const MAX_ITERS: usize = 80;
/// Quality gate: reduced best must reach this fraction of the baseline best.
const MIN_RELATIVE_BEST: f64 = 0.95;
/// Early-stop experiment: stop once this fraction of the session's own
/// baseline best is reached.
const TARGET_FRACTION: f64 = 0.95;
const SMOKE_SEED: u64 = 0xE61E_2027;

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_optimize.json".to_string());

    // One worker keeps the latency numbers comparable run to run on the
    // 1-core CI container; results are thread-count invariant regardless.
    let engine = Engine::builder()
        .threads(1)
        .build()
        .expect("default engine config");
    let graphs: Vec<graphlib::Graph> = (0..GRAPHS)
        .map(|i| bench_graph(NODES, 5000 + i as u64))
        .collect();
    let jobs: Vec<Job> = graphs
        .iter()
        .map(|graph| {
            Job::Optimize(
                OptimizeJob::new(graph.clone())
                    .with_restarts(RESTARTS)
                    .with_max_iters(MAX_ITERS),
            )
        })
        .collect();

    let start = Instant::now();
    let results = engine.run_batch(&jobs, SMOKE_SEED);
    let batch_secs = start.elapsed().as_secs_f64();
    let reports: Vec<_> = results
        .iter()
        .map(|r| {
            r.as_ref()
                .expect("smoke sessions must succeed")
                .as_optimize()
                .expect("optimize jobs")
        })
        .collect();

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let ratios: Vec<f64> = reports.iter().map(|r| r.relative_best()).collect();
    let cost_ratios: Vec<f64> = reports.iter().map(|r| r.cost_ratio).collect();
    let approx_ratios: Vec<f64> = reports
        .iter()
        .map(|r| r.approximation_ratio().expect("12-node ground truth"))
        .collect();
    let mean_ratio = mean(&ratios);
    let min_ratio = ratios.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_cost = mean(&cost_ratios);
    let reduced_evals = mean(
        &reports
            .iter()
            .map(|r| r.reduced_evaluations as f64)
            .collect::<Vec<_>>(),
    );
    let baseline_evals = mean(
        &reports
            .iter()
            .map(|r| r.baseline_evaluations as f64)
            .collect::<Vec<_>>(),
    );

    assert!(
        mean_ratio >= MIN_RELATIVE_BEST,
        "reduced-graph optimization regressed: mean reduced/baseline ratio \
         {mean_ratio:.4} < {MIN_RELATIVE_BEST} (per-graph: {ratios:?})"
    );
    assert!(
        mean_cost < 1.0,
        "the reduced path must cost fewer full-graph-equivalent evaluations \
         than the baseline (mean cost ratio {mean_cost:.4})"
    );

    // --- Evaluations-to-target: the driver's early stopping. ----------------
    // On the first graph, re-run the baseline session with a target of 95%
    // of its own (known) best: the driver must stop at or before the
    // uncapped session's evaluation count.
    let first = reports[0];
    let target = TARGET_FRACTION * first.transfer.native.best_value;
    let evaluator = StatevectorEvaluator::new(&graphs[0], 1).expect("12-node statevector");
    let capped = OptimizeDriver::new(NelderMeadOptimizer::default(), RESTARTS, MAX_ITERS)
        .target_value(target)
        .maximize(&evaluator, &mut mathkit::rng::seeded(SMOKE_SEED))
        .expect("capped session");
    let evaluations_to_target = capped.evaluations;
    assert!(
        capped.best_value >= target,
        "the capped session must reach its target ({} < {target})",
        capped.best_value
    );
    assert!(
        evaluations_to_target as f64 <= baseline_evals * 1.5,
        "early stopping must not cost more than the uncapped sessions \
         ({evaluations_to_target} vs mean {baseline_evals:.0})"
    );

    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"optimize_smoke\",\n",
            "  \"available_cores\": {},\n",
            "  \"pool_graphs\": {},\n",
            "  \"pool_graph_nodes\": {},\n",
            "  \"restarts\": {},\n",
            "  \"max_iters\": {},\n",
            "  \"batch_ms\": {:.3},\n",
            "  \"mean_session_ms\": {:.3},\n",
            "  \"mean_reduced_vs_baseline_ratio\": {:.4},\n",
            "  \"min_reduced_vs_baseline_ratio\": {:.4},\n",
            "  \"mean_approximation_ratio\": {:.4},\n",
            "  \"mean_cost_ratio\": {:.4},\n",
            "  \"mean_reduced_evaluations\": {:.1},\n",
            "  \"mean_baseline_evaluations\": {:.1},\n",
            "  \"target_fraction\": {},\n",
            "  \"evaluations_to_target\": {},\n",
            "  \"quality_gate\": {}\n",
            "}}\n"
        ),
        cores,
        GRAPHS,
        NODES,
        RESTARTS,
        MAX_ITERS,
        batch_secs * 1e3,
        batch_secs * 1e3 / GRAPHS as f64,
        mean_ratio,
        min_ratio,
        mean(&approx_ratios),
        mean_cost,
        reduced_evals,
        baseline_evals,
        TARGET_FRACTION,
        evaluations_to_target,
        MIN_RELATIVE_BEST,
    );
    std::fs::write(&output, &json).expect("write benchmark record");
    print!("{json}");
    println!("wrote {output}");
}
