//! Shared helpers for the Criterion benchmark harness.
//!
//! The benches in `benches/` regenerate the data behind the paper's figures
//! at reduced sizes (Criterion runs each body many times, so the per-run
//! configurations are kept small). Run them with `cargo bench --workspace`;
//! each group is named after the figure(s) it covers.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use graphlib::generators::connected_gnp;
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::induced_subgraph;
use graphlib::traversal::connected_components;
use graphlib::Graph;
use mathkit::rng::{derive_seed, seeded};

/// Deterministic seed used by all benchmarks.
pub const BENCH_SEED: u64 = 0xBE4C_2024;

/// A small connected Erdős–Rényi benchmark graph of the given size.
pub fn bench_graph(nodes: usize, stream: u64) -> Graph {
    let mut rng = seeded(derive_seed(BENCH_SEED, stream));
    connected_gnp(nodes, 0.4, &mut rng).expect("valid benchmark graph")
}

/// The pre-incremental SA objective: rebuild the induced subgraph and rerun
/// the global metrics. This is the rebuild-per-move baseline that both the
/// `sa_move_eval_rebuild_vs_incremental` criterion group and the
/// `reduction_smoke` CI bin compare the incremental `SaState` evaluator
/// against — one definition so the two measurements can never drift apart.
pub fn rebuild_objective(graph: &Graph, nodes: &[usize], target_and: f64, penalty: f64) -> f64 {
    let sub = induced_subgraph(graph, nodes).expect("valid selection");
    let and = average_node_degree(&sub.graph);
    let components = connected_components(&sub.graph).len();
    (and - target_and).abs() + penalty * (components.saturating_sub(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_graph_is_deterministic_and_connected() {
        let a = bench_graph(10, 1);
        let b = bench_graph(10, 1);
        assert_eq!(a, b);
        assert!(graphlib::traversal::is_connected(&a));
        assert_ne!(bench_graph(10, 2), a);
    }
}
