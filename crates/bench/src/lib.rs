//! Shared helpers for the Criterion benchmark harness.
//!
//! The benches in `benches/` regenerate the data behind the paper's figures
//! at reduced sizes (Criterion runs each body many times, so the per-run
//! configurations are kept small). Run them with `cargo bench --workspace`;
//! each group is named after the figure(s) it covers.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use graphlib::generators::connected_gnp;
use graphlib::Graph;
use mathkit::rng::{derive_seed, seeded};

/// Deterministic seed used by all benchmarks.
pub const BENCH_SEED: u64 = 0xBE4C_2024;

/// A small connected Erdős–Rényi benchmark graph of the given size.
pub fn bench_graph(nodes: usize, stream: u64) -> Graph {
    let mut rng = seeded(derive_seed(BENCH_SEED, stream));
    connected_gnp(nodes, 0.4, &mut rng).expect("valid benchmark graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_graph_is_deterministic_and_connected() {
        let a = bench_graph(10, 1);
        let b = bench_graph(10, 1);
        assert_eq!(a, b);
        assert!(graphlib::traversal::is_connected(&a));
        assert_ne!(bench_graph(10, 2), a);
    }
}
