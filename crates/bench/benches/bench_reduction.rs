//! Benchmarks of the Red-QAOA graph-reduction engine (Figure 18): the SA
//! inner loop and the full binary-search reduction at several graph sizes.
//!
//! This binary also carries the steady-state-resize allocation assertion
//! (run before the criterion groups, via a counting global allocator): after
//! scratch warm-up, `resize_selection_with_scratch` must allocate exactly
//! its returned selection and nothing else.

use bench::{bench_graph, rebuild_objective};
use criterion::{criterion_group, BenchmarkId, Criterion};
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::random_connected_subgraph;
use graphlib::Graph;
use red_qaoa::annealing::{
    anneal_subgraph, resize_selection_with_scratch, CoolingSchedule, ResizeScratch, SaOptions,
};
use red_qaoa::reduction::{reduce, ReductionOptions, WarmStart};
use red_qaoa::sa_state::SaState;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts heap allocations (alloc + realloc) so the resize hot path can be
/// asserted allocation-free in its steady state. Deallocations are not
/// counted: dropping the returned selection is the caller's business.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn bench_sa_single_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_anneal_fixed_size");
    for &n in &[20usize, 50, 100] {
        let graph = bench_graph(n, n as u64);
        let k = (n * 2) / 3;
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let mut rng = mathkit::rng::seeded(11);
            b.iter(|| anneal_subgraph(graph, k, &SaOptions::default(), &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_full_reduction_fig18(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_fig18");
    group.sample_size(10);
    for &n in &[20usize, 60, 120, 240] {
        let graph = bench_graph(n, 500 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let mut rng = mathkit::rng::seeded(13);
            b.iter(|| reduce(graph, &ReductionOptions::default(), &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_cooling_schedules(c: &mut Criterion) {
    let graph = bench_graph(40, 9);
    let mut group = c.benchmark_group("cooling_schedule_ablation_fig8");
    for (label, cooling) in [
        ("constant", CoolingSchedule::Constant(0.95)),
        ("adaptive", CoolingSchedule::Adaptive { base: 0.95 }),
    ] {
        let options = SaOptions {
            cooling,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            let mut rng = mathkit::rng::seeded(17);
            b.iter(|| anneal_subgraph(&graph, 26, &options, &mut rng).unwrap())
        });
    }
    group.finish();
}

/// The PR-3 tentpole comparison: scoring one candidate swap by rebuilding
/// the induced subgraph (the pre-incremental hot loop) versus the
/// `SaState` incremental evaluator. Both score the same fixed batch of
/// proposals from the same state.
fn bench_move_eval_rebuild_vs_incremental(c: &mut Criterion) {
    let graph = bench_graph(60, 21);
    let k = 40;
    let target = average_node_degree(&graph);
    let mut rng = mathkit::rng::seeded(23);
    let initial = random_connected_subgraph(&graph, k, &mut rng).expect("samplable");
    let mut state = SaState::new(&graph, &initial.nodes, target, 10.0).expect("valid selection");
    let swaps: Vec<(usize, usize)> = (0..256)
        .map(|_| state.propose(&mut rng).expect("non-empty boundary"))
        .collect();

    let mut group = c.benchmark_group("sa_move_eval_rebuild_vs_incremental");
    group.bench_function("rebuild_per_move", |b| {
        let mut candidate = Vec::with_capacity(k);
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(out, inn) in &swaps {
                candidate.clear();
                candidate.extend(initial.nodes.iter().copied().filter(|&u| u != out));
                candidate.push(inn);
                acc += rebuild_objective(&graph, &candidate, target, 10.0);
            }
            acc
        })
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(out, inn) in &swaps {
                acc += state.evaluate_swap(out, inn);
            }
            acc
        })
    });
    group.finish();
}

/// The PR-4 tentpole comparison: the full binary-search `reduce` with the
/// warm-started SA (each candidate size seeded from the previous size's
/// best subgraph at reduced temperature) versus the cold re-anneal-per-size
/// search, at the Figure 18 graph sizes.
fn bench_reduce_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_warm_vs_cold");
    group.sample_size(10);
    for &n in &[20usize, 60, 120] {
        let graph = bench_graph(n, 700 + n as u64);
        for (label, warm_start) in [("cold", WarmStart::Off), ("warm", WarmStart::On)] {
            let options = ReductionOptions {
                warm_start,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, n), &graph, |b, graph| {
                let mut rng = mathkit::rng::seeded(29);
                b.iter(|| reduce(graph, &options, &mut rng).unwrap())
            });
        }
    }
    group.finish();
}

/// The old connectivity path the PR-7 rewrite replaced: a full BFS scan of
/// the candidate selection per evaluated swap. Kept here as the baseline arm
/// of `sa_connectivity_incremental_vs_scan`.
#[allow(clippy::too_many_arguments)]
fn scan_components(
    graph: &Graph,
    selection: &[usize],
    out: usize,
    inn: usize,
    visit: &mut [u64],
    epoch: &mut u64,
    queue: &mut Vec<usize>,
) -> usize {
    *epoch += 1;
    let member = |w: usize| w == inn || (w != out && selection.contains(&w));
    let mut components = 0usize;
    for start in selection.iter().copied().chain(std::iter::once(inn)) {
        if !member(start) || visit[start] == *epoch {
            continue;
        }
        components += 1;
        visit[start] = *epoch;
        queue.clear();
        queue.push(start);
        while let Some(u) = queue.pop() {
            for w in graph.neighbors(u) {
                if member(w) && visit[w] != *epoch {
                    visit[w] = *epoch;
                    queue.push(w);
                }
            }
        }
    }
    components
}

/// The PR-7 tentpole comparison: scoring the same fixed batch of candidate
/// swaps with the incremental connectivity (`SaState::evaluate_swap` — local
/// rules, union-find labels, and the word-parallel neighborhood shortcut)
/// versus the zero-alloc full-scan BFS the old evaluator ran per candidate.
fn bench_connectivity_incremental_vs_scan(c: &mut Criterion) {
    let graph = bench_graph(60, 33);
    let k = 40;
    let target = average_node_degree(&graph);
    let mut rng = mathkit::rng::seeded(37);
    let initial = random_connected_subgraph(&graph, k, &mut rng).expect("samplable");
    let mut state = SaState::new(&graph, &initial.nodes, target, 10.0).expect("valid selection");
    let swaps: Vec<(usize, usize)> = (0..256)
        .map(|_| state.propose(&mut rng).expect("non-empty boundary"))
        .collect();

    let mut group = c.benchmark_group("sa_connectivity_incremental_vs_scan");
    group.bench_function("full_scan", |b| {
        let mut visit = vec![0u64; graph.node_count()];
        let mut epoch = 0u64;
        let mut queue = Vec::with_capacity(k);
        b.iter(|| {
            let mut acc = 0usize;
            for &(out, inn) in &swaps {
                acc += scan_components(
                    &graph,
                    &initial.nodes,
                    out,
                    inn,
                    &mut visit,
                    &mut epoch,
                    &mut queue,
                );
            }
            acc
        })
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(out, inn) in &swaps {
                acc += state.evaluate_swap(out, inn);
            }
            acc
        })
    });
    group.finish();
}

/// Micro-assert: after the scratch has seen each ladder size once, repeated
/// `resize_selection_with_scratch` calls allocate **exactly one** heap block
/// per call — the returned selection — and nothing else. The ladder repeats
/// the warm-up sizes verbatim, so every internal buffer (mask, degree cache,
/// CSR, Tarjan state, eviction heap) has already reached its high-water
/// capacity and any additional allocation is a regression of the scratch
/// hoisting.
fn assert_steady_state_resize_allocates_only_the_result() {
    const LADDER: [usize; 4] = [80, 40, 100, 60];
    let graph = bench_graph(120, 31);
    let full: Vec<usize> = (0..graph.node_count()).collect();
    let mut scratch = ResizeScratch::default();
    for &k in &LADDER {
        let _ = resize_selection_with_scratch(&graph, &full, k, &mut scratch)
            .expect("benchmark selection resizes");
    }

    let rounds = 16u64;
    let calls = rounds * LADDER.len() as u64;
    let before = ALLOC_COUNT.load(Ordering::Relaxed);
    let mut sink = 0usize;
    for _ in 0..rounds {
        for &k in &LADDER {
            let selection = resize_selection_with_scratch(&graph, &full, k, &mut scratch)
                .expect("benchmark selection resizes");
            sink += selection.len();
        }
    }
    let delta = ALLOC_COUNT.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, calls,
        "steady-state resize must allocate only its returned selection \
         (one allocation per call): {delta} allocations over {calls} calls"
    );
    assert_eq!(sink as u64, rounds * LADDER.iter().sum::<usize>() as u64);
    println!("resize steady state: {calls} calls, {delta} allocations (result vectors only)");
}

criterion_group!(
    benches,
    bench_sa_single_size,
    bench_full_reduction_fig18,
    bench_cooling_schedules,
    bench_move_eval_rebuild_vs_incremental,
    bench_connectivity_incremental_vs_scan,
    bench_reduce_warm_vs_cold
);

fn main() {
    assert_steady_state_resize_allocates_only_the_result();
    benches();
}
