//! Benchmarks of the Red-QAOA graph-reduction engine (Figure 18): the SA
//! inner loop and the full binary-search reduction at several graph sizes.

use bench::{bench_graph, rebuild_objective};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::random_connected_subgraph;
use red_qaoa::annealing::{anneal_subgraph, CoolingSchedule, SaOptions};
use red_qaoa::reduction::{reduce, ReductionOptions, WarmStart};
use red_qaoa::sa_state::SaState;

fn bench_sa_single_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_anneal_fixed_size");
    for &n in &[20usize, 50, 100] {
        let graph = bench_graph(n, n as u64);
        let k = (n * 2) / 3;
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let mut rng = mathkit::rng::seeded(11);
            b.iter(|| anneal_subgraph(graph, k, &SaOptions::default(), &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_full_reduction_fig18(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_fig18");
    group.sample_size(10);
    for &n in &[20usize, 60, 120, 240] {
        let graph = bench_graph(n, 500 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let mut rng = mathkit::rng::seeded(13);
            b.iter(|| reduce(graph, &ReductionOptions::default(), &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_cooling_schedules(c: &mut Criterion) {
    let graph = bench_graph(40, 9);
    let mut group = c.benchmark_group("cooling_schedule_ablation_fig8");
    for (label, cooling) in [
        ("constant", CoolingSchedule::Constant(0.95)),
        ("adaptive", CoolingSchedule::Adaptive { base: 0.95 }),
    ] {
        let options = SaOptions {
            cooling,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            let mut rng = mathkit::rng::seeded(17);
            b.iter(|| anneal_subgraph(&graph, 26, &options, &mut rng).unwrap())
        });
    }
    group.finish();
}

/// The PR-3 tentpole comparison: scoring one candidate swap by rebuilding
/// the induced subgraph (the pre-incremental hot loop) versus the
/// `SaState` incremental evaluator. Both score the same fixed batch of
/// proposals from the same state.
fn bench_move_eval_rebuild_vs_incremental(c: &mut Criterion) {
    let graph = bench_graph(60, 21);
    let k = 40;
    let target = average_node_degree(&graph);
    let mut rng = mathkit::rng::seeded(23);
    let initial = random_connected_subgraph(&graph, k, &mut rng).expect("samplable");
    let mut state = SaState::new(&graph, &initial.nodes, target, 10.0).expect("valid selection");
    let swaps: Vec<(usize, usize)> = (0..256)
        .map(|_| state.propose(&mut rng).expect("non-empty boundary"))
        .collect();

    let mut group = c.benchmark_group("sa_move_eval_rebuild_vs_incremental");
    group.bench_function("rebuild_per_move", |b| {
        let mut candidate = Vec::with_capacity(k);
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(out, inn) in &swaps {
                candidate.clear();
                candidate.extend(initial.nodes.iter().copied().filter(|&u| u != out));
                candidate.push(inn);
                acc += rebuild_objective(&graph, &candidate, target, 10.0);
            }
            acc
        })
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &(out, inn) in &swaps {
                acc += state.evaluate_swap(out, inn);
            }
            acc
        })
    });
    group.finish();
}

/// The PR-4 tentpole comparison: the full binary-search `reduce` with the
/// warm-started SA (each candidate size seeded from the previous size's
/// best subgraph at reduced temperature) versus the cold re-anneal-per-size
/// search, at the Figure 18 graph sizes.
fn bench_reduce_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_warm_vs_cold");
    group.sample_size(10);
    for &n in &[20usize, 60, 120] {
        let graph = bench_graph(n, 700 + n as u64);
        for (label, warm_start) in [("cold", WarmStart::Off), ("warm", WarmStart::On)] {
            let options = ReductionOptions {
                warm_start,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, n), &graph, |b, graph| {
                let mut rng = mathkit::rng::seeded(29);
                b.iter(|| reduce(graph, &options, &mut rng).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sa_single_size,
    bench_full_reduction_fig18,
    bench_cooling_schedules,
    bench_move_eval_rebuild_vs_incremental,
    bench_reduce_warm_vs_cold
);
criterion_main!(benches);
