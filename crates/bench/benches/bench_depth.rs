//! Benchmarks of the depth-reduction subsystem: the three-pass greedy
//! interaction scheduler versus the naive sequential (one-round-per-gate)
//! emission it replaces, at several regular-graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphlib::generators::random_regular;
use mathkit::rng::seeded;
use qaoa::depth::{schedule_terms, CostHamiltonian, ZzTerm};

/// Scheduling cost: the full three-pass scheduler (greedy lowest-max-load
/// packing, matching augmentation, Kempe repair) against the naive
/// baseline that emits one round per term. The naive arm measures the
/// cost floor of *not* scheduling; the greedy arm's margin over it is the
/// compile-time price of the `|E| / (d+1)` depth reduction the CI smoke
/// (`depth_smoke`) asserts.
fn bench_schedule_greedy_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_greedy_vs_naive");
    for &n in &[24usize, 96, 240] {
        let mut rng = seeded(41 + n as u64);
        let graph = random_regular(n, 4, &mut rng).expect("valid regular graph");
        let terms = CostHamiltonian::maxcut(&graph)
            .expect("non-degenerate graph")
            .terms()
            .to_vec();
        group.bench_with_input(BenchmarkId::new("greedy", n), &terms, |b, terms| {
            b.iter(|| schedule_terms(n, terms))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &terms, |b, terms| {
            b.iter(|| terms.iter().map(|t| vec![*t]).collect::<Vec<Vec<ZzTerm>>>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule_greedy_vs_naive);
criterion_main!(benches);
