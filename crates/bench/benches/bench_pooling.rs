//! Benchmarks of the pooling baselines against the SA search (Figure 8):
//! the cost of producing a reduced graph with each method.

use bench::bench_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pooling::{AsaPooling, PoolingMethod, SagPooling, TopKPooling};
use red_qaoa::annealing::{anneal_subgraph, SaOptions};

fn bench_pooling_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooling_methods_fig8");
    for &n in &[12usize, 24, 48] {
        let graph = bench_graph(n, n as u64);
        let keep = 0.7;
        group.bench_with_input(BenchmarkId::new("topk", n), &graph, |b, g| {
            b.iter(|| TopKPooling::new().pool(g, keep).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sag", n), &graph, |b, g| {
            b.iter(|| SagPooling::new().pool(g, keep).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("asa", n), &graph, |b, g| {
            b.iter(|| AsaPooling::new().pool(g, keep).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sa", n), &graph, |b, g| {
            let k = (n as f64 * keep).ceil() as usize;
            let mut rng = mathkit::rng::seeded(23);
            b.iter(|| anneal_subgraph(g, k, &SaOptions::default(), &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_features");
    for &n in &[20usize, 60] {
        let graph = bench_graph(n, 200 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| pooling::node_features(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pooling_methods, bench_feature_extraction);
criterion_main!(benches);
