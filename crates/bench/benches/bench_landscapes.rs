//! Benchmarks of energy-landscape evaluation (Figures 2, 3, 6, 14): grid
//! sweeps, random parameter sets, the analytic / edge-local fast paths, and
//! the allocation win of workspace-backed evaluation over the old
//! closure-per-point style.

use bench::bench_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphlib::generators::cycle;
use qaoa::analytic::analytic_expectation_p1;
use qaoa::evaluator::{EnergyEvaluator, StatevectorEvaluator};
use qaoa::expectation::{edge_local_expectation, QaoaInstance};
use qaoa::landscape::{random_parameter_set, Landscape};
use qaoa::params::{QaoaParams, BETA_MAX, GAMMA_MAX};

fn bench_landscape_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("landscape_grid_fig3");
    for &n in &[7usize, 10, 13] {
        let graph = cycle(n).unwrap();
        let evaluator = StatevectorEvaluator::new(&graph, 1).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &evaluator,
            // Pin to one worker so the numbers measure the evaluation
            // kernel, not thread-spawn overhead and the machine's core
            // count (the parallel path is timed by the landscape_smoke
            // bin instead).
            |b, evaluator| {
                b.iter(|| mathkit::parallel::with_threads(1, || Landscape::evaluate(8, evaluator)))
            },
        );
    }
    group.finish();
}

/// The old closure-per-point evaluation style: a fresh `2^n` statevector
/// (plus a phase table per layer and a params vector pair) allocated at
/// every grid point.
fn closure_style_grid(instance: &QaoaInstance, width: usize) -> f64 {
    let mut total = 0.0;
    for i in 0..width {
        for j in 0..width {
            let gamma = GAMMA_MAX * i as f64 / width as f64;
            let beta = BETA_MAX * j as f64 / width as f64;
            let params = QaoaParams::new(vec![gamma], vec![beta]).unwrap();
            total += instance.expectation(&params);
        }
    }
    total
}

/// The workspace-backed style: one scratch, one reused params buffer, zero
/// per-point allocation.
fn workspace_style_grid(evaluator: &StatevectorEvaluator, width: usize) -> f64 {
    let mut scratch = evaluator.scratch();
    let mut params = QaoaParams::new(vec![0.0], vec![0.0]).unwrap();
    let mut total = 0.0;
    for i in 0..width {
        for j in 0..width {
            params.gammas[0] = GAMMA_MAX * i as f64 / width as f64;
            params.betas[0] = BETA_MAX * j as f64 / width as f64;
            total += evaluator.energy(&mut scratch, (i * width + j) as u64, &params);
        }
    }
    total
}

fn bench_closure_vs_workspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_closure_vs_workspace");
    for &n in &[10usize, 13] {
        let graph = bench_graph(n, n as u64);
        let instance = QaoaInstance::new(&graph, 1).unwrap();
        let evaluator = StatevectorEvaluator::from_instance(instance.clone());
        group.bench_with_input(
            BenchmarkId::new("closure_alloc_per_point", n),
            &instance,
            |b, instance| b.iter(|| closure_style_grid(instance, 8)),
        );
        group.bench_with_input(
            BenchmarkId::new("workspace_zero_alloc", n),
            &evaluator,
            |b, evaluator| b.iter(|| workspace_style_grid(evaluator, 8)),
        );
    }
    group.finish();
}

fn bench_parameter_set_p2(c: &mut Criterion) {
    let mut group = c.benchmark_group("parameter_set_mse_fig14");
    for &n in &[8usize, 10] {
        let graph = bench_graph(n, n as u64);
        let evaluator = StatevectorEvaluator::new(&graph, 2).unwrap();
        let mut rng = mathkit::rng::seeded(7);
        let set = random_parameter_set(2, 64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| {
                let mut scratch = evaluator.scratch();
                set.iter()
                    .enumerate()
                    .map(|(i, p)| evaluator.energy(&mut scratch, i as u64, p))
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

fn bench_analytic_vs_statevector(c: &mut Criterion) {
    let graph = bench_graph(12, 3);
    let params = QaoaParams::new(vec![0.7], vec![0.3]).unwrap();
    let instance = QaoaInstance::new(&graph, 1).unwrap();
    let mut group = c.benchmark_group("p1_expectation_backends");
    group.bench_function("statevector", |b| b.iter(|| instance.expectation(&params)));
    group.bench_function("analytic", |b| {
        b.iter(|| analytic_expectation_p1(&graph, &params).unwrap())
    });
    group.bench_function("edge_local", |b| {
        b.iter(|| edge_local_expectation(&graph, &params).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_landscape_grid,
    bench_closure_vs_workspace,
    bench_parameter_set_p2,
    bench_analytic_vs_statevector
);
criterion_main!(benches);
