//! Benchmarks of energy-landscape evaluation (Figures 2, 3, 6, 14): grid
//! sweeps, random parameter sets, and the analytic / edge-local fast paths.

use bench::bench_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphlib::generators::cycle;
use qaoa::analytic::analytic_expectation_p1;
use qaoa::expectation::{edge_local_expectation, QaoaInstance};
use qaoa::landscape::{random_parameter_set, Landscape};
use qaoa::params::QaoaParams;

fn bench_landscape_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("landscape_grid_fig3");
    for &n in &[7usize, 10, 13] {
        let graph = cycle(n).unwrap();
        let instance = QaoaInstance::new(&graph, 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, instance| {
            b.iter(|| Landscape::evaluate(8, |p| instance.expectation(p)))
        });
    }
    group.finish();
}

fn bench_parameter_set_p2(c: &mut Criterion) {
    let mut group = c.benchmark_group("parameter_set_mse_fig14");
    for &n in &[8usize, 10] {
        let graph = bench_graph(n, n as u64);
        let instance = QaoaInstance::new(&graph, 2).unwrap();
        let mut rng = mathkit::rng::seeded(7);
        let set = random_parameter_set(2, 64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| set.iter().map(|p| instance.expectation(p)).sum::<f64>())
        });
    }
    group.finish();
}

fn bench_analytic_vs_statevector(c: &mut Criterion) {
    let graph = bench_graph(12, 3);
    let params = QaoaParams::new(vec![0.7], vec![0.3]).unwrap();
    let instance = QaoaInstance::new(&graph, 1).unwrap();
    let mut group = c.benchmark_group("p1_expectation_backends");
    group.bench_function("statevector", |b| b.iter(|| instance.expectation(&params)));
    group.bench_function("analytic", |b| {
        b.iter(|| analytic_expectation_p1(&graph, &params).unwrap())
    });
    group.bench_function("edge_local", |b| {
        b.iter(|| edge_local_expectation(&graph, &params).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_landscape_grid,
    bench_parameter_set_p2,
    bench_analytic_vs_statevector
);
criterion_main!(benches);
