//! Benchmarks of the quantum-simulation substrate: statevector, density
//! matrix, trajectory noise, and routing. These back the runtime arguments of
//! the methodology section (which simulator backend is used at which size).

use bench::bench_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::circuit::qaoa_circuit;
use qaoa::params::QaoaParams;
use qsim::circuit::{Circuit, Gate};
use qsim::density::DensityMatrix;
use qsim::devices::heavy_hex_like;
use qsim::noise::{NoiseModel, ReadoutError};
use qsim::statevector::{with_kernel, KernelMode, StateVector};
use qsim::trajectory::{noisy_probabilities, TrajectoryOptions};
use qsim::transpile::{decompose_to_native, route_trivial};

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::H(0)).unwrap();
    for q in 1..n {
        c.push(Gate::Cnot(q - 1, q)).unwrap();
    }
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for &n in &[8usize, 12, 16] {
        let circuit = ghz_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| StateVector::from_circuit(circuit).probabilities())
        });
    }
    group.finish();
}

/// Scalar reference kernels vs the chunked vectorized kernels on the same
/// QAOA evolution — the criterion-grade version of `qsim_smoke`'s rows.
fn bench_statevector_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_scalar_vs_vectorized");
    for &n in &[12usize, 16] {
        let graph = bench_graph(n, n as u64);
        let params = QaoaParams::new(vec![0.6, 0.3], vec![0.4, 0.2]).unwrap();
        let circuit = qaoa_circuit(&graph, &params).unwrap();
        for (label, mode) in [
            ("scalar", KernelMode::Scalar),
            ("vectorized", KernelMode::Vectorized),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &circuit,
                |b, circuit: &Circuit| {
                    let mut sv = StateVector::new(circuit.qubit_count());
                    b.iter(|| {
                        with_kernel(mode, || {
                            sv.reinitialize_zero(circuit.qubit_count());
                            sv.apply_circuit(circuit);
                            sv.expectation_z(0)
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_density_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    for &n in &[4usize, 6] {
        let circuit = ghz_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| {
                let mut dm = DensityMatrix::new(circuit.qubit_count()).unwrap();
                dm.apply_circuit(circuit);
                dm.probabilities()
            })
        });
    }
    group.finish();
}

fn bench_trajectory_noise(c: &mut Criterion) {
    let noise = NoiseModel::new(
        1e-3,
        1e-2,
        ReadoutError::new(0.02, 0.03),
        90.0,
        70.0,
        35.0,
        300.0,
    );
    let mut group = c.benchmark_group("trajectory_noise");
    for &n in &[8usize, 10] {
        let graph = bench_graph(n, n as u64);
        let params = QaoaParams::new(vec![0.6], vec![0.4]).unwrap();
        let circuit = qaoa_circuit(&graph, &params).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            let mut rng = mathkit::rng::seeded(1);
            b.iter(|| {
                noisy_probabilities(
                    circuit,
                    &noise,
                    TrajectoryOptions { trajectories: 8 },
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_sabre_substitute");
    for &n in &[8usize, 12, 16] {
        let graph = bench_graph(n, 100 + n as u64);
        let params = QaoaParams::new(vec![0.6], vec![0.4]).unwrap();
        let circuit = qaoa_circuit(&graph, &params).unwrap();
        let coupling = heavy_hex_like(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| {
                let routed = route_trivial(circuit, &coupling).unwrap();
                decompose_to_native(&routed.circuit).two_qubit_gate_count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_statevector_kernels,
    bench_density_matrix,
    bench_trajectory_noise,
    bench_routing
);
criterion_main!(benches);
