//! Benchmarks of the end-to-end Red-QAOA pipeline (Figures 17, 19, 20): the
//! ideal pipeline, the noisy pipeline, the throughput model, and the
//! gradient-free optimizer flavors behind the `OptimizeDriver`.

use bench::bench_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaoa::evaluator::StatevectorEvaluator;
use qaoa::optimize::{
    NelderMeadOptimizer, OptimizeDriver, OptimizeOptions, OptimizerConfig, SpsaOptimizer,
};
use qsim::devices::fake_toronto;
use red_qaoa::pipeline::{run_ideal, run_noisy, CircuitReduction, PipelineOptions};
use red_qaoa::reduction::ReductionOptions;
use red_qaoa::throughput::dataset_relative_throughput;

fn pipeline_options() -> PipelineOptions {
    PipelineOptions {
        layers: 1,
        reduction: ReductionOptions::default(),
        optimize: OptimizeOptions {
            restarts: 2,
            max_iters: 40,
        },
        refine_iters: 20,
        circuit: CircuitReduction::None,
    }
}

fn bench_ideal_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ideal_pipeline_fig17");
    group.sample_size(10);
    for &n in &[8usize, 10] {
        let graph = bench_graph(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            let mut rng = mathkit::rng::seeded(31);
            b.iter(|| run_ideal(g, &pipeline_options(), &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_noisy_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_pipeline_fig19");
    group.sample_size(10);
    let graph = bench_graph(8, 77);
    let noise = fake_toronto().noise;
    group.bench_function("8_nodes", |b| {
        let mut rng = mathkit::rng::seeded(37);
        b.iter(|| run_noisy(&graph, &pipeline_options(), &noise, 8, &mut rng).unwrap())
    });
    group.finish();
}

fn bench_throughput_model(c: &mut Criterion) {
    let graphs: Vec<_> = (0..8).map(|i| bench_graph(9, 300 + i)).collect();
    let mut group = c.benchmark_group("throughput_model_fig25");
    group.sample_size(10);
    for &qubits in &[27usize, 127] {
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &graphs, |b, graphs| {
            let mut rng = mathkit::rng::seeded(41);
            b.iter(|| {
                dataset_relative_throughput(
                    graphs,
                    qubits,
                    1,
                    &ReductionOptions::default(),
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_nelder_mead_vs_spsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("nelder_mead_vs_spsa");
    group.sample_size(10);
    let graph = bench_graph(10, 88);
    let evaluator = StatevectorEvaluator::new(&graph, 1).unwrap();
    let flavors = [
        (
            "nelder_mead",
            OptimizerConfig::NelderMead(NelderMeadOptimizer::default()),
        ),
        ("spsa", OptimizerConfig::Spsa(SpsaOptimizer::default())),
    ];
    for (name, optimizer) in flavors {
        let driver = OptimizeDriver::new(optimizer, 2, 60);
        group.bench_with_input(BenchmarkId::from_parameter(name), &driver, |b, driver| {
            let mut rng = mathkit::rng::seeded(47);
            b.iter(|| driver.maximize(&evaluator, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ideal_pipeline,
    bench_noisy_pipeline,
    bench_throughput_model,
    bench_nelder_mead_vs_spsa
);
criterion_main!(benches);
