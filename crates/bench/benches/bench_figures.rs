//! One Criterion group per figure family, each invoking the corresponding
//! `experiments` module at a miniature configuration. Together with
//! `bench_reduction` / `bench_end_to_end` this gives a bench target for every
//! table and figure of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::and_correlation::{run_fig5, run_fig7, Fig5Config, Fig7Config};
use experiments::convergence::{run_fig1, Fig1Config};
use experiments::dataset_eval::{run_small_datasets, run_table1, DatasetEvalConfig};
use experiments::end_to_end::{run_fig17, Fig17Config};
use experiments::landscapes::run_fig3;
use experiments::noisy_mse::{run_fig10, NoisyMseConfig};
use experiments::pooling_cmp::{run_fig8, Fig8Config};
use experiments::sa_effectiveness::{run_fig9, Fig9Config};
use experiments::throughput_cmp::{run_fig25, Fig25Config};
use experiments::transfer_cmp::{run_fig21, Fig21Config};

fn bench_fig1(c: &mut Criterion) {
    let config = Fig1Config {
        node_counts: vec![5],
        iterations: 8,
        trajectories: 4,
        ..Default::default()
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig01_convergence", |b| {
        b.iter(|| run_fig1(&config).unwrap())
    });
    group.bench_function("fig03_cycle_landscapes", |b| {
        b.iter(|| run_fig3(8).unwrap())
    });
    group.finish();
}

fn bench_fig5_fig7(c: &mut Criterion) {
    let fig5 = Fig5Config {
        graph_count: 1,
        nodes: 7,
        subgraph_sizes: vec![5],
        width: 6,
        fit_degree: 2,
        ..Default::default()
    };
    let fig7 = Fig7Config {
        nodes: 8,
        layers: 1,
        parameter_sets: 32,
        subgraph_samples: 6,
        ..Default::default()
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig05_and_correlation", |b| {
        b.iter(|| run_fig5(&fig5).unwrap())
    });
    group.bench_function("fig07_optima_distance", |b| {
        b.iter(|| run_fig7(&fig7).unwrap())
    });
    group.finish();
}

fn bench_fig8_fig9(c: &mut Criterion) {
    let fig8 = Fig8Config {
        graph_count: 1,
        nodes: 8,
        layers: 1,
        parameter_sets: 24,
        reduction_ratios: vec![0.3],
        ..Default::default()
    };
    let fig9 = Fig9Config {
        nodes: 7,
        subgraph_sizes: vec![5],
        width: 6,
        bins: 6,
        ..Default::default()
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig08_pooling_comparison", |b| {
        b.iter(|| run_fig8(&fig8).unwrap())
    });
    group.bench_function("fig09_sa_effectiveness", |b| {
        b.iter(|| run_fig9(&fig9).unwrap())
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let config = NoisyMseConfig {
        node_counts: vec![7],
        width: 4,
        trajectories: 4,
        ..Default::default()
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig10_noisy_mse", |b| {
        b.iter(|| run_fig10(&config).unwrap())
    });
    group.finish();
}

fn bench_datasets_and_throughput(c: &mut Criterion) {
    let eval = DatasetEvalConfig {
        graphs_per_dataset: 2,
        layers: vec![1],
        parameter_sets: 16,
        ..Default::default()
    };
    let throughput = Fig25Config {
        graphs_per_dataset: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig13_fig14_dataset_eval", |b| {
        b.iter(|| run_small_datasets(&eval).unwrap())
    });
    group.bench_function("fig25_throughput", |b| {
        b.iter(|| run_fig25(&throughput).unwrap())
    });
    group.bench_function("table1_datasets", |b| b.iter(|| run_table1(1)));
    group.finish();
}

fn bench_fig17_fig21(c: &mut Criterion) {
    let fig17 = Fig17Config {
        graph_count: 1,
        nodes: 8,
        layers: vec![1],
        restarts: vec![1],
        iterations: 20,
        ..Default::default()
    };
    let fig21 = Fig21Config {
        graphs_per_family: 1,
        parameter_sets: 16,
        structured_nodes: 8,
        ..Default::default()
    };
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig17_end_to_end", |b| {
        b.iter(|| run_fig17(&fig17).unwrap())
    });
    group.bench_function("fig21_parameter_transfer", |b| {
        b.iter(|| run_fig21(&fig21).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig5_fig7,
    bench_fig8_fig9,
    bench_fig10,
    bench_datasets_and_throughput,
    bench_fig17_fig21
);
criterion_main!(benches);
