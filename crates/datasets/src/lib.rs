//! Synthetic benchmark graph corpora.
//!
//! The paper evaluates on four datasets (Table 1): **AIDS** (700 chemical
//! compound graphs, 2–10 nodes), **LINUX** (1000 program-dependence /
//! function-call graphs, 4–10 nodes), **IMDb** (1500 actor-collaboration ego
//! networks, 7–89 nodes, much denser), and ten Erdős–Rényi **Random** graphs
//! with 7–20 nodes. The original datasets are distributed with the paper's
//! artifact; they are not available offline here, so this crate generates
//! *statistical twins*: corpora with the same graph counts, node ranges, and
//! density/degree character as described in the paper (sparse tree-plus-ring
//! molecules, sparse call trees, dense near-clique ego networks). Every
//! generator is deterministic in its seed.
//!
//! The experiments only consume graph structure, so these twins exercise the
//! same code paths and reproduce the qualitative dataset differences the
//! paper reports (e.g. IMDb's high average node degree making small-graph
//! reduction harder).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generators;
pub mod stats;

pub use generators::{aids, imdb, linux, random_suite, DatasetName};
pub use stats::DatasetSummary;

use graphlib::Graph;

/// A named collection of benchmark graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (e.g. `"AIDS"`).
    pub name: String,
    /// The member graphs.
    pub graphs: Vec<Graph>,
}

impl Dataset {
    /// Number of graphs in the dataset.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` if the dataset holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Returns a new dataset containing only graphs whose node count lies in
    /// `[min_nodes, max_nodes]`. This is how the paper splits IMDb into
    /// "small" (≤ 10 nodes) and "medium" (10–20 nodes) subsets.
    pub fn filter_by_nodes(&self, min_nodes: usize, max_nodes: usize) -> Dataset {
        Dataset {
            name: format!("{} ({min_nodes}-{max_nodes} nodes)", self.name),
            graphs: self
                .graphs
                .iter()
                .filter(|g| g.node_count() >= min_nodes && g.node_count() <= max_nodes)
                .cloned()
                .collect(),
        }
    }

    /// Returns at most `count` graphs (the prefix), useful for keeping
    /// experiment runtimes bounded.
    pub fn take(&self, count: usize) -> Dataset {
        Dataset {
            name: self.name.clone(),
            graphs: self.graphs.iter().take(count).cloned().collect(),
        }
    }

    /// Summary statistics of the dataset.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary::from_dataset(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_and_take() {
        let ds = aids(3).take(50);
        assert_eq!(ds.len(), 50);
        let small = ds.filter_by_nodes(2, 5);
        assert!(small.graphs.iter().all(|g| g.node_count() <= 5));
        assert!(!small.is_empty());
        assert!(small.name.contains("AIDS"));
    }
}
