//! Dataset summary statistics (Table 1).

use crate::Dataset;
use graphlib::Graph;

/// Aggregate statistics of a dataset, matching the columns of Table 1 plus
/// the degree/density figures discussed in Section 6.3.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of graphs.
    pub graph_count: usize,
    /// Smallest node count.
    pub min_nodes: usize,
    /// Largest node count.
    pub max_nodes: usize,
    /// Mean node count.
    pub mean_nodes: f64,
    /// Mean edge count.
    pub mean_edges: f64,
    /// Mean average node degree.
    pub mean_average_degree: f64,
    /// Mean edge density.
    pub mean_density: f64,
}

impl DatasetSummary {
    /// Computes the summary of a dataset. Empty datasets yield zeroed fields.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let n = dataset.len();
        if n == 0 {
            return Self {
                name: dataset.name.clone(),
                graph_count: 0,
                min_nodes: 0,
                max_nodes: 0,
                mean_nodes: 0.0,
                mean_edges: 0.0,
                mean_average_degree: 0.0,
                mean_density: 0.0,
            };
        }
        let node_counts: Vec<usize> = dataset.graphs.iter().map(Graph::node_count).collect();
        Self {
            name: dataset.name.clone(),
            graph_count: n,
            min_nodes: *node_counts.iter().min().expect("non-empty"),
            max_nodes: *node_counts.iter().max().expect("non-empty"),
            mean_nodes: node_counts.iter().sum::<usize>() as f64 / n as f64,
            mean_edges: dataset.graphs.iter().map(Graph::edge_count).sum::<usize>() as f64
                / n as f64,
            mean_average_degree: dataset
                .graphs
                .iter()
                .map(Graph::average_degree)
                .sum::<f64>()
                / n as f64,
            mean_density: dataset.graphs.iter().map(Graph::density).sum::<f64>() / n as f64,
        }
    }

    /// Formats the summary as a TSV row
    /// (`name, graphs, node range, mean nodes, mean edges, mean degree, density`).
    pub fn to_row(&self) -> String {
        format!(
            "{}\t{}\t{}-{}\t{:.1}\t{:.1}\t{:.2}\t{:.2}",
            self.name,
            self.graph_count,
            self.min_nodes,
            self.max_nodes,
            self.mean_nodes,
            self.mean_edges,
            self.mean_average_degree,
            self.mean_density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{aids, imdb};

    #[test]
    fn summary_of_aids_twin() {
        let s = aids(5).summary();
        assert_eq!(s.graph_count, 700);
        assert!(s.min_nodes >= 2);
        assert!(s.max_nodes <= 10);
        assert!(s.mean_nodes > 3.0 && s.mean_nodes < 9.0);
        assert!(s.mean_average_degree > 1.0);
        assert!(!s.to_row().is_empty());
    }

    #[test]
    fn imdb_density_exceeds_aids() {
        let a = aids(5).take(200).summary();
        let i = imdb(5).take(200).summary();
        assert!(i.mean_average_degree > a.mean_average_degree);
        assert!(i.mean_density > a.mean_density);
    }

    #[test]
    fn empty_dataset_summary_is_zeroed() {
        let empty = Dataset {
            name: "empty".into(),
            graphs: vec![],
        };
        let s = empty.summary();
        assert_eq!(s.graph_count, 0);
        assert_eq!(s.mean_nodes, 0.0);
    }
}
