//! Deterministic generators for the four benchmark corpora.

use crate::Dataset;
use graphlib::generators::{connected_gnp, erdos_renyi_gnm};
use graphlib::traversal::connected_components;
use graphlib::Graph;
use mathkit::rng::{derive_seed, seeded};
use rand::rngs::SmallRng;
use rand::Rng;

/// The benchmark datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// Chemical-compound graphs (sparse, 2–10 nodes).
    Aids,
    /// Linux-kernel function-call graphs (sparse, 4–10 nodes).
    Linux,
    /// IMDb actor-collaboration ego networks (dense, 7–89 nodes).
    Imdb,
    /// Erdős–Rényi random graphs (7–20 nodes).
    Random,
}

impl DatasetName {
    /// Builds the dataset with the given seed.
    pub fn build(self, seed: u64) -> Dataset {
        match self {
            DatasetName::Aids => aids(seed),
            DatasetName::Linux => linux(seed),
            DatasetName::Imdb => imdb(seed),
            DatasetName::Random => random_suite(seed),
        }
    }

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            DatasetName::Aids => "AIDS",
            DatasetName::Linux => "LINUX",
            DatasetName::Imdb => "IMDb",
            DatasetName::Random => "Random",
        }
    }
}

/// Ensures the graph is connected by linking consecutive components.
fn connect(graph: &mut Graph, rng: &mut SmallRng) {
    let components = connected_components(graph);
    for window in components.windows(2) {
        let a = window[0][rng.gen_range(0..window[0].len())];
        let b = window[1][rng.gen_range(0..window[1].len())];
        graph.add_edge(a, b).expect("nodes are in range");
    }
}

/// A random tree on `n` nodes (uniform attachment).
fn random_tree(n: usize, rng: &mut SmallRng) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge(parent, v).expect("nodes are in range");
    }
    g
}

/// Synthetic AIDS twin: 700 chemical-compound-like graphs with 2–10 nodes.
/// Molecules are mostly trees (chains and branches) with an occasional ring
/// closure, giving an average degree around 2.
pub fn aids(seed: u64) -> Dataset {
    let mut graphs = Vec::with_capacity(700);
    for i in 0..700u64 {
        let mut rng = seeded(derive_seed(seed, i));
        let n = rng.gen_range(2..=10);
        let mut g = random_tree(n, &mut rng);
        // Ring closure with modest probability, as in small organic molecules.
        if n >= 5 && rng.gen::<f64>() < 0.45 {
            for _ in 0..10 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v).expect("nodes are in range");
                    break;
                }
            }
        }
        graphs.push(g);
    }
    Dataset {
        name: "AIDS".to_string(),
        graphs,
    }
}

/// Synthetic LINUX twin: 1000 function-call-graph-like graphs with 4–10
/// nodes. Call graphs are sparse and tree-dominated (a function calls a small
/// set of callees), with occasional cross-calls.
pub fn linux(seed: u64) -> Dataset {
    let mut graphs = Vec::with_capacity(1000);
    for i in 0..1000u64 {
        let mut rng = seeded(derive_seed(seed.wrapping_add(0x11), i));
        let n = rng.gen_range(4..=10);
        let mut g = random_tree(n, &mut rng);
        // Occasional cross edge (shared helper function).
        if n >= 6 && rng.gen::<f64>() < 0.3 {
            for _ in 0..10 {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v).expect("nodes are in range");
                    break;
                }
            }
        }
        graphs.push(g);
    }
    Dataset {
        name: "LINUX".to_string(),
        graphs,
    }
}

/// Synthetic IMDb twin: 1500 ego-network-like collaboration graphs with 7–89
/// nodes, most below ~15. Collaboration ego networks are dense: the ego is
/// connected to everyone and co-stars of a production form near-cliques.
pub fn imdb(seed: u64) -> Dataset {
    let mut graphs = Vec::with_capacity(1500);
    for i in 0..1500u64 {
        let mut rng = seeded(derive_seed(seed.wrapping_add(0x22), i));
        // Skewed size distribution: mostly small, occasionally large.
        let roll: f64 = rng.gen();
        let n = if roll < 0.62 {
            rng.gen_range(7..=10)
        } else if roll < 0.92 {
            rng.gen_range(11..=20)
        } else if roll < 0.99 {
            rng.gen_range(21..=45)
        } else {
            rng.gen_range(46..=89)
        };
        // Roughly half of the real IMDb ego networks are complete graphs
        // (a single production whose cast all collaborated), which is why the
        // paper reports ~54% of IMDb graphs being regular. Reproduce that mix.
        if rng.gen::<f64>() < 0.55 {
            graphs.push(graphlib::generators::complete(n));
            continue;
        }
        let mut g = Graph::new(n);
        // Node 0 is the ego, connected to every other actor.
        for v in 1..n {
            g.add_edge(0, v).expect("nodes are in range");
        }
        // Co-star cliques: partition the alters into a few productions and
        // connect each production densely.
        let mut alters: Vec<usize> = (1..n).collect();
        while !alters.is_empty() {
            let size = rng.gen_range(2..=5.min(alters.len().max(2)));
            let take = size.min(alters.len());
            let production: Vec<usize> = alters.drain(..take).collect();
            for a in 0..production.len() {
                for b in (a + 1)..production.len() {
                    if rng.gen::<f64>() < 0.85 {
                        g.add_edge(production[a], production[b])
                            .expect("nodes are in range");
                    }
                }
            }
        }
        connect(&mut g, &mut rng);
        graphs.push(g);
    }
    Dataset {
        name: "IMDb".to_string(),
        graphs,
    }
}

/// The ten Erdős–Rényi random graphs (7–20 nodes) of the "Random" dataset.
pub fn random_suite(seed: u64) -> Dataset {
    let mut graphs = Vec::with_capacity(10);
    for i in 0..10u64 {
        let mut rng = seeded(derive_seed(seed.wrapping_add(0x33), i));
        let n = 7 + (i as usize * 13) % 14; // spread sizes over 7..=20
        let g = connected_gnp(n, 0.35, &mut rng).expect("valid parameters");
        graphs.push(g);
    }
    Dataset {
        name: "Random".to_string(),
        graphs,
    }
}

/// Generates `count` connected Erdős–Rényi graphs of exactly `nodes` nodes
/// with approximately the given average degree. Used by the scalability and
/// end-to-end experiments (e.g. "100 random 30-node graphs").
pub fn random_graphs_with_degree(
    count: usize,
    nodes: usize,
    average_degree: f64,
    seed: u64,
) -> Vec<Graph> {
    let target_edges = ((average_degree * nodes as f64) / 2.0).round() as usize;
    let max_edges = nodes * (nodes - 1) / 2;
    let edges = target_edges.clamp(nodes.saturating_sub(1), max_edges);
    (0..count as u64)
        .map(|i| {
            let mut rng = seeded(derive_seed(seed.wrapping_add(0x44), i));
            let mut g = erdos_renyi_gnm(nodes, edges, &mut rng).expect("valid parameters");
            connect(&mut g, &mut rng);
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::traversal::is_connected;

    #[test]
    fn aids_matches_table1_shape() {
        let ds = aids(1);
        assert_eq!(ds.len(), 700);
        assert!(ds.graphs.iter().all(|g| (2..=10).contains(&g.node_count())));
        let avg_degree: f64 =
            ds.graphs.iter().map(Graph::average_degree).sum::<f64>() / ds.len() as f64;
        assert!(avg_degree < 2.6, "AIDS twin too dense: {avg_degree}");
    }

    #[test]
    fn linux_matches_table1_shape() {
        let ds = linux(1);
        assert_eq!(ds.len(), 1000);
        assert!(ds.graphs.iter().all(|g| (4..=10).contains(&g.node_count())));
        assert!(ds.graphs.iter().all(is_connected));
    }

    #[test]
    fn imdb_matches_table1_shape_and_is_denser() {
        let ds = imdb(1);
        assert_eq!(ds.len(), 1500);
        assert!(ds.graphs.iter().all(|g| (7..=89).contains(&g.node_count())));
        assert!(ds.graphs.iter().all(is_connected));
        let imdb_degree: f64 =
            ds.graphs.iter().map(Graph::average_degree).sum::<f64>() / ds.len() as f64;
        let aids_degree: f64 = aids(1)
            .graphs
            .iter()
            .map(Graph::average_degree)
            .sum::<f64>()
            / 700.0;
        assert!(
            imdb_degree > aids_degree + 1.0,
            "IMDb twin should be much denser: {imdb_degree} vs {aids_degree}"
        );
        // The paper notes ~54% of IMDb graphs are regular (complete ego
        // networks); our twin should at least contain a healthy fraction.
        let regular = ds
            .graphs
            .iter()
            .filter(|g| graphlib::metrics::is_regular(g))
            .count();
        assert!(
            regular * 10 >= ds.len(),
            "too few regular graphs: {regular}"
        );
    }

    #[test]
    fn random_suite_matches_description() {
        let ds = random_suite(1);
        assert_eq!(ds.len(), 10);
        assert!(ds.graphs.iter().all(|g| (7..=20).contains(&g.node_count())));
        assert!(ds.graphs.iter().all(is_connected));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(aids(7).graphs[..20], aids(7).graphs[..20]);
        assert_eq!(imdb(7).graphs[..20], imdb(7).graphs[..20]);
        assert_ne!(aids(7).graphs[..20], aids(8).graphs[..20]);
    }

    #[test]
    fn sized_random_graphs_have_requested_shape() {
        let graphs = random_graphs_with_degree(5, 30, 4.0, 3);
        assert_eq!(graphs.len(), 5);
        for g in &graphs {
            assert_eq!(g.node_count(), 30);
            assert!(is_connected(g));
            assert!((g.average_degree() - 4.0).abs() < 1.0);
        }
    }

    #[test]
    fn dataset_name_builders() {
        assert_eq!(DatasetName::Aids.label(), "AIDS");
        assert_eq!(DatasetName::Imdb.build(2).len(), 1500);
        assert_eq!(DatasetName::Random.build(2).len(), 10);
        assert_eq!(DatasetName::Linux.build(2).len(), 1000);
    }
}
