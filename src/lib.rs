//! Umbrella crate for the Red-QAOA reproduction workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! cross-crate integration tests (`tests/`). It simply re-exports the member
//! crates so that examples and tests can use a single dependency.
//!
//! See [`red_qaoa`] for the core contribution, [`qaoa`] for the QAOA library,
//! [`qsim`] for the quantum-circuit simulator substrate, and [`experiments`]
//! for the figure/table reproduction harness.

pub use datasets;
pub use experiments;
pub use graphlib;
pub use mathkit;
pub use pooling;
pub use qaoa;
pub use qsim;
pub use red_qaoa;

/// The batched, session-oriented service API (re-exported from
/// [`red_qaoa::engine`] so examples and downstream users can reach the
/// front door directly).
pub use red_qaoa::engine;
