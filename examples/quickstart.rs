//! Quickstart: reduce a graph with Red-QAOA, optimize on the reduced graph,
//! transfer the parameters back, and compare against plain QAOA.
//!
//! Run with: `cargo run --release --example quickstart`

use graphlib::generators::connected_gnp;
use mathkit::rng::seeded;
use qaoa::expectation::QaoaInstance;
use qaoa::maxcut::brute_force_maxcut;
use red_qaoa::pipeline::{run_ideal, PipelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a MaxCut instance: a random 12-node graph.
    let mut rng = seeded(42);
    let graph = connected_gnp(12, 0.4, &mut rng)?;
    println!("original graph : {graph}");
    println!("exact MaxCut   : {}", brute_force_maxcut(&graph)?.best_cut);

    // 2. Run the full Red-QAOA pipeline (reduce -> optimize on G' -> transfer
    //    -> refine on G) and the plain-QAOA baseline with the same budget.
    let outcome = run_ideal(&graph, &PipelineOptions::default(), &mut rng)?;
    let reduced = outcome.reduction.graph();
    println!(
        "reduced graph  : {} ({}% fewer nodes, {}% fewer edges, AND ratio {:.2})",
        reduced,
        (outcome.reduction.node_reduction * 100.0).round(),
        (outcome.reduction.edge_reduction * 100.0).round(),
        outcome.reduction.and_ratio
    );

    // 3. Compare the outcomes.
    println!(
        "Red-QAOA expectation : {:.3} (approximation ratio {:.3})",
        outcome.final_value,
        outcome.approximation_ratio().unwrap_or(0.0)
    );
    println!(
        "baseline expectation : {:.3} (approximation ratio {:.3})",
        outcome.baseline_value,
        outcome.baseline_approximation_ratio().unwrap_or(0.0)
    );
    println!("Red-QAOA / baseline  : {:.3}", outcome.relative_best());

    // 4. The transferred parameters are already good on the original graph
    //    before refinement — that is the core claim of the paper.
    let instance = QaoaInstance::new(&graph, 1)?;
    let transferred = instance.expectation(&outcome.transferred_params);
    println!("value at transferred parameters (no refinement): {transferred:.3}");
    Ok(())
}
