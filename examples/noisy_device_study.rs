//! Domain scenario 3: choosing a quantum device for a QAOA workload.
//!
//! Given one optimization problem, this example sweeps the bundled device
//! noise models (Kolkata through Toronto plus Rigetti Aspen-M-3) and reports
//! how faithfully each device would reproduce the ideal energy landscape with
//! and without Red-QAOA's circuit reduction.
//!
//! Run with: `cargo run --release --example noisy_device_study`

use graphlib::generators::connected_gnp;
use mathkit::rng::seeded;
use qsim::devices::{aspen_m3, noise_sweep_devices};
use red_qaoa::mse::noisy_grid_comparison;
use red_qaoa::reduction::{reduce, ReductionOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded(5);
    let graph = connected_gnp(10, 0.4, &mut rng)?;
    let reduced = reduce(&graph, &ReductionOptions::default(), &mut rng)?;
    println!(
        "workload: {} -> reduced to {} nodes (AND ratio {:.2})",
        graph,
        reduced.graph().node_count(),
        reduced.and_ratio
    );
    println!("device\t2q_error\tbaseline_mse\tred_qaoa_mse");

    let mut devices = noise_sweep_devices();
    devices.push(aspen_m3());
    for device in devices {
        let comparison =
            noisy_grid_comparison(&graph, reduced.graph(), 6, &device.noise, 16, &mut rng)?;
        println!(
            "{}\t{:.3}%\t{:.4}\t{:.4}",
            device.name,
            device.noise.error_2q * 100.0,
            comparison.baseline_mse,
            comparison.reduced_mse
        );
    }
    Ok(())
}
