//! A 100-job mixed batch through one long-lived `Engine` — the
//! session-oriented service API of `red_qaoa::engine`.
//!
//! The batch deliberately repeats graphs (the "many users, same hot graphs"
//! scenario): 25 distinct graphs fan out as 100 jobs mixing reductions,
//! throughput estimates, and full pipelines. The engine anneals each
//! distinct (graph, options) pair once and serves every repeat from its
//! content-hash cache — asserted at the end via the hit/miss counters and by
//! comparing the repeated jobs' outputs bitwise.
//!
//! Run with: `cargo run --release --example engine_batch`

use graphlib::generators::connected_gnp;
use mathkit::rng::{derive_seed, seeded};
use red_qaoa::engine::{Engine, Job, PipelineJob, ReduceJob, ThroughputJob};
use red_qaoa::pipeline::PipelineOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One engine for the whole session: configuration validated once,
    // thread policy and reduction cache owned for its lifetime. threads(1)
    // only keeps the hit/miss counters asserted below exact — with more
    // workers, two jobs can race on the same key and both count a miss
    // (every job *result* is identical for any worker count).
    let engine = Engine::builder().threads(1).cache_capacity(512).build()?;

    // 25 distinct graphs, each submitted four times in different roles.
    let graphs: Vec<graphlib::Graph> = (0..25)
        .map(|i| connected_gnp(12, 0.4, &mut seeded(derive_seed(2026, i))).unwrap())
        .collect();
    let quick_pipeline = PipelineOptions {
        optimize: qaoa::optimize::OptimizeOptions {
            restarts: 1,
            max_iters: 25,
        },
        refine_iters: 10,
        ..Default::default()
    };
    let mut jobs: Vec<Job> = Vec::with_capacity(100);
    for graph in &graphs {
        jobs.push(Job::Reduce(ReduceJob::new(graph.clone())));
        jobs.push(Job::Throughput(ThroughputJob::new(graph.clone(), 27, 1)));
        jobs.push(Job::Throughput(ThroughputJob::new(graph.clone(), 65, 1)));
        jobs.push(Job::Pipeline(
            PipelineJob::new(graph.clone()).with_options(quick_pipeline.clone()),
        ));
    }
    assert_eq!(jobs.len(), 100);

    let start = std::time::Instant::now();
    let results = engine.run_batch(&jobs, 42);
    let elapsed = start.elapsed();

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let stats = engine.cache_stats();
    println!(
        "batch        : {} jobs in {:.1?} ({ok} ok)",
        jobs.len(),
        elapsed
    );
    println!(
        "cache        : {} misses (distinct reductions annealed), {} hits, {} entries",
        stats.misses, stats.hits, stats.entries
    );

    // Every distinct graph annealed exactly once; the other three roles of
    // each graph were cache hits.
    assert_eq!(stats.misses as usize, graphs.len(), "one anneal per graph");
    assert!(
        stats.hits as usize >= 3 * graphs.len(),
        "repeated graphs must hit the cache (got {} hits)",
        stats.hits
    );

    // The reduce job and the pipeline job of the same graph share one
    // reduction, bit for bit.
    for i in 0..graphs.len() {
        let reduced = results[4 * i]
            .as_ref()
            .expect("reduce job succeeds")
            .as_reduced()
            .expect("typed output")
            .clone();
        let pipeline = results[4 * i + 3]
            .as_ref()
            .expect("pipeline job succeeds")
            .as_pipeline()
            .expect("typed output");
        assert_eq!(reduced, pipeline.reduction, "graph {i} re-annealed");
    }

    let mean_throughput_27: f64 = results
        .iter()
        .skip(1)
        .step_by(4)
        .filter_map(|r| r.as_ref().ok().and_then(|o| o.as_throughput()))
        .sum::<f64>()
        / graphs.len() as f64;
    println!("throughput   : mean {mean_throughput_27:.2}x on a 27-qubit device");
    println!("engine_batch : all cache assertions passed");
    Ok(())
}
