//! Domain scenario 2: Linux-kernel call graphs (the LINUX dataset twin).
//!
//! Program-dependence graphs are sparse and tree-like. This example runs the
//! full Red-QAOA pipeline on a batch of call graphs under a noisy device
//! model and compares the solution quality reached by Red-QAOA against the
//! noisy plain-QAOA baseline — the Figure 19 protocol on a concrete workload.
//!
//! Run with: `cargo run --release --example kernel_callgraph`

use datasets::linux;
use mathkit::rng::seeded;
use qaoa::optimize::OptimizeOptions;
use qsim::devices::fake_toronto;
use red_qaoa::pipeline::{run_noisy, CircuitReduction, PipelineOptions};
use red_qaoa::reduction::ReductionOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = linux(3).filter_by_nodes(7, 10).take(5);
    let noise = fake_toronto().noise;
    let options = PipelineOptions {
        layers: 1,
        reduction: ReductionOptions::default(),
        optimize: OptimizeOptions {
            restarts: 2,
            max_iters: 40,
        },
        refine_iters: 0,
        circuit: CircuitReduction::None,
    };

    println!(
        "call-graph batch: {} graphs (FakeToronto-class noise)",
        dataset.len()
    );
    println!("graph\tnodes\tred_nodes\tbaseline\tred_qaoa\timprovement");
    let mut rng = seeded(11);
    for (i, graph) in dataset.graphs.iter().enumerate() {
        let outcome = match run_noisy(graph, &options, &noise, 12, &mut rng) {
            Ok(o) => o,
            Err(_) => continue,
        };
        println!(
            "{i}\t{}\t{}\t{:.3}\t{:.3}\t{:+.1}%",
            graph.node_count(),
            outcome.reduction.graph().node_count(),
            outcome.baseline_ideal_value,
            outcome.red_qaoa_ideal_value,
            outcome.relative_improvement() * 100.0
        );
    }
    Ok(())
}
