//! Domain scenario 1: chemical-compound graphs (the AIDS dataset twin).
//!
//! Chemistry workloads produce many small, sparse molecule graphs. This
//! example reduces a batch of AIDS-like compound graphs, reports the average
//! node/edge reduction and landscape fidelity, and shows the throughput gain
//! from packing the reduced circuits onto a 27-qubit device.
//!
//! Run with: `cargo run --release --example molecule_maxcut`

use datasets::aids;
use mathkit::rng::seeded;
use red_qaoa::mse::ideal_sample_mse;
use red_qaoa::reduction::{reduce, ReductionOptions};
use red_qaoa::throughput::relative_throughput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = aids(7).filter_by_nodes(6, 10).take(10);
    println!("molecule batch: {} compound graphs", dataset.len());
    println!("graph\tnodes\tedges\tnode_red\tedge_red\tideal_mse\tthroughput_27q");

    let mut rng = seeded(1);
    let mut total_mse = 0.0;
    let mut counted = 0usize;
    for (i, graph) in dataset.graphs.iter().enumerate() {
        let reduced = match reduce(graph, &ReductionOptions::default(), &mut rng) {
            Ok(r) => r,
            Err(_) => continue,
        };
        let mse = ideal_sample_mse(graph, reduced.graph(), 1, 64, &mut rng)?;
        let throughput = relative_throughput(graph, reduced.graph(), 27, 1);
        println!(
            "{i}\t{}\t{}\t{:.0}%\t{:.0}%\t{:.4}\t{:.2}x",
            graph.node_count(),
            graph.edge_count(),
            reduced.node_reduction * 100.0,
            reduced.edge_reduction * 100.0,
            mse,
            throughput
        );
        total_mse += mse;
        counted += 1;
    }
    if counted > 0 {
        println!(
            "mean ideal landscape MSE: {:.4}",
            total_mse / counted as f64
        );
    }
    Ok(())
}
