#!/usr/bin/env bash
# Local CI for the Red-QAOA reproduction workspace.
#
# Gates, in order:
#   1. cargo fmt --check      — formatting (rustfmt.toml pins the style)
#   2. cargo clippy -D warnings — lints; the only allowed-by-policy lint is
#      clippy::needless_range_loop, granted workspace-wide in Cargo.toml
#      ([workspace.lints.clippy]) because index loops are the clearest form
#      for the dense-matrix and qubit kernels.
#   2b. cargo doc (warnings denied) — every crate carries
#      #![deny(missing_docs)], so missing rustdoc already fails the build;
#      this gate additionally fails on rustdoc-only rot (broken intra-doc
#      links, malformed doc fragments) that rustc cannot see.
#   3. tier-1 verify          — cargo build --release && cargo test -q,
#      run twice: once with RED_QAOA_THREADS=1 (forced-serial paths) and
#      once with the variable unset (parallel paths, default thread count).
#      The determinism contract says both must pass with identical
#      semantics; the property tests in tests/parallel_determinism.rs
#      additionally check bitwise equality across thread counts.
#   4. perf smoke             — the bench/ landscape smoke emits
#      BENCH_landscape.json (points/sec for a 32×32 grid on a 16-node
#      graph, 4-thread speedup gated at >= 2x when cores > 1), the
#      reduction smoke emits BENCH_reduction.json (SA moves/sec,
#      incremental-vs-rebuild move evaluation, reduce_pool graphs/sec),
#      the engine smoke emits BENCH_engine.json (batch jobs/sec cold vs
#      warm reduction cache), the optimize smoke emits BENCH_optimize.json
#      (end-to-end session latency, reduced-vs-baseline ratio gated at
#      >= 0.95, full-graph-equivalent cost ratio, evaluations-to-target),
#      the qsim smoke emits BENCH_qsim.json (gate-ops/sec scalar vs
#      vectorized kernels for 8-20 qubits, bitwise cross-checked, 16-qubit
#      speedup gated at >= 1.5x, per-core landscape scaling gated at >= 2x
#      when cores > 1), and the depth smoke emits BENCH_depth.json
#      (interaction-scheduler rounds gated at <= d+1 for d-regular graphs,
#      two-qubit depth reduction vs naive emission gated at >= 2x, and the
#      compound node+depth noisy MSE gated at <= the node-only MSE) so the
#      perf trajectory is recorded run-over-run.
#   5. bench targets resolve  — cargo bench --no-run
#   6. figure binaries        — every fig*/table* binary answers --help,
#      and a fast subset's --json output must parse as JSON (jq)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --quiet --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> tier-1 (serial: RED_QAOA_THREADS=1): cargo build --release && cargo test -q"
cargo build --release
RED_QAOA_THREADS=1 cargo test -q

echo "==> tier-1 (parallel: RED_QAOA_THREADS unset): cargo test -q"
env -u RED_QAOA_THREADS cargo test -q

echo "==> perf smoke: landscape grid points/sec -> BENCH_landscape.json"
cargo run --quiet --release -p bench --bin landscape_smoke BENCH_landscape.json

echo "==> perf smoke: reduction moves/sec + graphs/sec -> BENCH_reduction.json"
cargo run --quiet --release -p bench --bin reduction_smoke BENCH_reduction.json

echo "==> perf smoke: engine batch cold vs warm cache -> BENCH_engine.json"
cargo run --quiet --release -p bench --bin engine_smoke BENCH_engine.json

echo "==> perf smoke: end-to-end optimization sessions -> BENCH_optimize.json"
cargo run --quiet --release -p bench --bin optimize_smoke BENCH_optimize.json

echo "==> perf smoke: statevector kernels scalar vs vectorized -> BENCH_qsim.json"
cargo run --quiet --release -p bench --bin qsim_smoke BENCH_qsim.json

echo "==> perf smoke: depth scheduling rounds + compound MSE -> BENCH_depth.json"
cargo run --quiet --release -p bench --bin depth_smoke BENCH_depth.json

echo "==> benches compile: cargo bench --no-run"
cargo bench --no-run --quiet

echo "==> figure binaries answer --help"
cargo build --release -p experiments --bins --quiet
for bin in target/release/fig* target/release/table1_datasets; do
    [ -x "$bin" ] || continue
    "$bin" --help >/dev/null
done

echo "==> --json output parses (fast subset)"
for bin in fig03_cycle_landscapes fig06_mse_threshold table1_datasets; do
    "target/release/$bin" --json | jq -es 'length > 0' >/dev/null \
        || { echo "FAIL: $bin --json is not parseable JSON"; exit 1; }
done

echo "CI OK"
