#!/usr/bin/env bash
# Local CI for the Red-QAOA reproduction workspace.
#
# Gates, in order:
#   1. cargo fmt --check      — formatting (rustfmt.toml pins the style)
#   2. cargo clippy -D warnings — lints; the only allowed-by-policy lint is
#      clippy::needless_range_loop, granted workspace-wide in Cargo.toml
#      ([workspace.lints.clippy]) because index loops are the clearest form
#      for the dense-matrix and qubit kernels.
#   3. tier-1 verify          — cargo build --release && cargo test -q
#   4. bench targets resolve  — cargo bench --no-run
#   5. figure binaries        — every fig*/table* binary answers --help
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --quiet --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> benches compile: cargo bench --no-run"
cargo bench --no-run --quiet

echo "==> figure binaries answer --help"
cargo build --release -p experiments --bins --quiet
for bin in target/release/fig* target/release/table1_datasets; do
    [ -x "$bin" ] || continue
    "$bin" --help >/dev/null
done

echo "CI OK"
