//! Integration tests of the comparison machinery: pooling baselines versus
//! the SA search, and noisy-versus-ideal orderings across the simulator
//! backends.

use graphlib::generators::connected_gnp;
use graphlib::metrics::average_node_degree;
use mathkit::rng::seeded;
use pooling::{AsaPooling, PoolingMethod, SagPooling, TopKPooling};
use qaoa::circuit::qaoa_circuit;
use qaoa::expectation::QaoaInstance;
use qaoa::params::QaoaParams;
use qsim::devices::{fake_toronto, kolkata};
use qsim::trajectory::TrajectoryOptions;
use red_qaoa::annealing::{anneal_subgraph, SaOptions};
use red_qaoa::mse::ideal_sample_mse;

#[test]
fn sa_tracks_average_degree_better_than_fixed_ratio_pooling() {
    // Aggregate comparison across several graphs: the AND gap of the SA
    // subgraph should on average be no worse than each pooling method's.
    let mut sa_total = 0.0;
    let mut pool_totals = [0.0f64; 3];
    let mut counted = 0usize;
    for seed in 0..6u64 {
        let mut rng = seeded(seed);
        let graph = connected_gnp(12, 0.4, &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let keep_ratio: f64 = 0.7;
        let k = (12.0 * keep_ratio).ceil() as usize;
        let sa = anneal_subgraph(&graph, k, &SaOptions::default(), &mut rng).unwrap();
        sa_total += (average_node_degree(&sa.subgraph.graph) - target).abs();
        let methods: [&dyn PoolingMethod; 3] =
            [&TopKPooling::new(), &SagPooling::new(), &AsaPooling::new()];
        for (i, method) in methods.iter().enumerate() {
            let pooled = method.pool(&graph, keep_ratio).unwrap();
            pool_totals[i] += (average_node_degree(&pooled.graph) - target).abs();
        }
        counted += 1;
    }
    let sa_mean = sa_total / counted as f64;
    for (i, total) in pool_totals.iter().enumerate() {
        let pool_mean = total / counted as f64;
        assert!(
            sa_mean <= pool_mean + 1e-9,
            "SA mean AND gap {sa_mean} worse than pooling method {i}: {pool_mean}"
        );
    }
}

#[test]
fn sa_subgraph_landscape_beats_worst_pooling_landscape() {
    let mut rng = seeded(4);
    let graph = connected_gnp(10, 0.45, &mut rng).unwrap();
    let keep_ratio: f64 = 0.7;
    let k = (10.0 * keep_ratio).ceil() as usize;
    let sa = anneal_subgraph(&graph, k, &SaOptions::default(), &mut rng).unwrap();
    let sa_mse = ideal_sample_mse(&graph, &sa.subgraph.graph, 1, 64, &mut seeded(10)).unwrap();
    let mut pooling_mses = Vec::new();
    let methods: [&dyn PoolingMethod; 3] =
        [&TopKPooling::new(), &SagPooling::new(), &AsaPooling::new()];
    for method in methods {
        let pooled = method.pool(&graph, keep_ratio).unwrap();
        if pooled.graph.edge_count() == 0 {
            continue;
        }
        pooling_mses.push(ideal_sample_mse(&graph, &pooled.graph, 1, 64, &mut seeded(10)).unwrap());
    }
    let worst_pooling = pooling_mses.iter().cloned().fold(0.0, f64::max);
    assert!(
        sa_mse <= worst_pooling + 1e-9,
        "SA mse {sa_mse} vs worst pooling {worst_pooling}"
    );
}

#[test]
fn noisier_devices_distort_expectations_more() {
    let mut rng = seeded(6);
    let graph = connected_gnp(8, 0.5, &mut rng).unwrap();
    let instance = QaoaInstance::new(&graph, 1).unwrap();
    let params = QaoaParams::new(vec![0.8], vec![0.4]).unwrap();
    let ideal = instance.expectation(&params);
    let opts = TrajectoryOptions { trajectories: 200 };
    let quiet = instance.noisy_expectation(&params, &kolkata().noise, opts, &mut seeded(1));
    let loud = instance.noisy_expectation(&params, &fake_toronto().noise, opts, &mut seeded(1));
    assert!(
        (loud - ideal).abs() + 0.05 >= (quiet - ideal).abs(),
        "Toronto ({loud}) should deviate at least as much as Kolkata ({quiet}) from {ideal}"
    );
}

#[test]
fn qaoa_circuit_gate_counts_shrink_with_the_graph() {
    let mut rng = seeded(8);
    let graph = connected_gnp(12, 0.5, &mut rng).unwrap();
    let reduced = red_qaoa::reduction::reduce(
        &graph,
        &red_qaoa::reduction::ReductionOptions::default(),
        &mut rng,
    )
    .unwrap();
    let params = QaoaParams::new(vec![0.5], vec![0.3]).unwrap();
    let full = qaoa_circuit(&graph, &params).unwrap();
    let small = qaoa_circuit(reduced.graph(), &params).unwrap();
    assert!(small.qubit_count() <= full.qubit_count());
    assert!(small.two_qubit_gate_count() <= full.two_qubit_gate_count());
    assert!(small.gate_count() < full.gate_count());
}
