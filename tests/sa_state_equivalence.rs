//! Property tests of the incremental SA move evaluator: over random
//! accepted/rejected move sequences, `SaState`'s objective, AND value, and
//! component count must be **exactly** (bitwise) equal to the from-scratch
//! `induced_subgraph` + `average_node_degree` + `connected_components`
//! computation, and its deduplicated boundary set must match the set of
//! outside nodes adjacent to the selection.

use graphlib::generators::connected_gnp;
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::{induced_subgraph, random_connected_subgraph};
use graphlib::traversal::connected_components;
use graphlib::Graph;
use mathkit::rng::seeded;
use proptest::prelude::*;
use rand::Rng;
use red_qaoa::annealing::{
    anneal_subgraph, resize_selection_with_scratch, ResizeScratch, SaOptions,
};
use red_qaoa::sa_state::SaState;

const PENALTY: f64 = 10.0;

/// The pre-incremental objective: rebuild the induced subgraph and rerun the
/// global metrics.
fn from_scratch(graph: &Graph, nodes: &[usize], target: f64) -> (f64, f64, usize) {
    let sub = induced_subgraph(graph, nodes).expect("valid selection");
    let and = average_node_degree(&sub.graph);
    let components = connected_components(&sub.graph).len();
    let value = (and - target).abs() + PENALTY * (components.saturating_sub(1)) as f64;
    (value, and, components)
}

fn expected_boundary(graph: &Graph, nodes: &[usize]) -> Vec<usize> {
    (0..graph.node_count())
        .filter(|&w| !nodes.contains(&w) && graph.neighbors(w).any(|x| nodes.contains(&x)))
        .collect()
}

/// Regression net for the adjacency-bitset size cap: beyond 4096 nodes
/// `SaState` disables its bitset rows (`words == 0`) and every membership
/// and connectivity query falls back to the CSR binary-search path. A
/// ~4200-node graph therefore exercises exactly the code the bitset fast
/// paths shadow on small graphs — each evaluated and committed move is
/// pinned to the from-scratch debug oracle, bit for bit.
#[test]
fn beyond_bitset_cap_moves_match_from_scratch_oracle() {
    let mut rng = seeded(0xC5);
    // Sparse, so the 4200-node graph stays cheap to build and to rebuild
    // from scratch in the oracle (mean degree ~6).
    let graph = connected_gnp(4200, 0.0015, &mut rng).unwrap();
    assert!(
        graph.node_count() > 4096,
        "graph must exceed the bitset cap"
    );
    let k = 60;
    let initial = random_connected_subgraph(&graph, k, &mut rng).unwrap();
    let target = average_node_degree(&graph);
    let mut state = SaState::new(&graph, &initial.nodes, target, PENALTY).unwrap();
    let mut current: Vec<usize> = initial.nodes.clone();

    for step in 0..60 {
        let Some((out, inn)) = state.propose(&mut rng) else {
            break;
        };
        let mut candidate = current.clone();
        candidate.retain(|&u| u != out);
        candidate.push(inn);
        let (expected_value, _, _) = from_scratch(&graph, &candidate, target);
        let got = state.evaluate_swap(out, inn);
        assert_eq!(
            expected_value.to_bits(),
            got.to_bits(),
            "evaluate_swap diverged from the oracle at step {step}"
        );
        // Random accept/reject, so the walk also visits disconnected
        // (penalized) selections on the CSR path.
        if rng.gen::<bool>() {
            state.apply_swap(out, inn);
            current = candidate;
        }
        let (value, and, components) = from_scratch(&graph, &current, target);
        assert_eq!(value.to_bits(), state.objective().to_bits());
        assert_eq!(and.to_bits(), state.and_value().to_bits());
        assert_eq!(components, state.components());
    }

    let mut boundary = state.boundary().to_vec();
    boundary.sort_unstable();
    assert_eq!(expected_boundary(&graph, &current), boundary);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Evaluate/apply over a random move sequence: every candidate score and
    /// every committed state matches the from-scratch computation bit for
    /// bit.
    #[test]
    fn incremental_state_matches_from_scratch(
        seed in 0u64..10_000,
        nodes in 6usize..14,
        steps in 10usize..60,
    ) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.35, &mut rng).unwrap();
        let k = 2 + (seed as usize % (nodes - 2));
        let initial = random_connected_subgraph(&graph, k, &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let mut state = SaState::new(&graph, &initial.nodes, target, PENALTY).unwrap();
        let mut current: Vec<usize> = initial.nodes.clone();

        for _ in 0..steps {
            let Some((out, inn)) = state.propose(&mut rng) else { break };
            let mut candidate = current.clone();
            candidate.retain(|&u| u != out);
            candidate.push(inn);
            let (expected_value, _, _) = from_scratch(&graph, &candidate, target);
            let got = state.evaluate_swap(out, inn);
            prop_assert_eq!(expected_value.to_bits(), got.to_bits());
            // Random accept/reject, independent of the objective, so the
            // walk also visits disconnected (penalized) selections.
            if rng.gen::<bool>() {
                state.apply_swap(out, inn);
                current = candidate;
            }
            let (value, and, components) = from_scratch(&graph, &current, target);
            prop_assert_eq!(value.to_bits(), state.objective().to_bits());
            prop_assert_eq!(and.to_bits(), state.and_value().to_bits());
            prop_assert_eq!(components, state.components());

            let mut boundary = state.boundary().to_vec();
            boundary.sort_unstable();
            prop_assert_eq!(expected_boundary(&graph, &current), boundary);
        }
    }

    /// The annealer's reported objective is the from-scratch objective of
    /// the subgraph it returns (the incremental loop never drifts from the
    /// ground truth it is supposed to be tracking).
    #[test]
    fn anneal_outcome_objective_is_exact(seed in 0u64..5_000, nodes in 6usize..12) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.4, &mut rng).unwrap();
        let k = 2 + (seed as usize % (nodes - 2));
        let outcome = anneal_subgraph(&graph, k, &SaOptions::default(), &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let (value, _, _) = from_scratch(&graph, &outcome.subgraph.nodes, target);
        prop_assert_eq!(value.to_bits(), outcome.objective.to_bits());
    }

    /// Long forced-accept walks: enough insertions to cross the union-find's
    /// periodic-rebuild threshold several times, with every intermediate
    /// component count pinned to the `connected_components` BFS oracle. This
    /// is the direct regression net under the incremental (union-find +
    /// dirty-region relabel) connectivity of the PR-7 rewrite — the move
    /// walk repeatedly splits and re-merges components and the label
    /// structure must never drift from the ground truth.
    #[test]
    fn union_find_components_survive_long_walks_and_rebuilds(
        seed in 0u64..10_000,
        nodes in 8usize..16,
    ) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.3, &mut rng).unwrap();
        let k = 3 + (seed as usize % (nodes - 4));
        let initial = random_connected_subgraph(&graph, k, &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let mut state = SaState::new(&graph, &initial.nodes, target, PENALTY).unwrap();
        let mut current: Vec<usize> = initial.nodes.clone();

        // Every proposed move is applied: ~200 insertions comfortably cross
        // the `4 n + 8` rebuild threshold multiple times for these sizes.
        for _ in 0..200 {
            let Some((out, inn)) = state.propose(&mut rng) else { break };
            state.evaluate_swap(out, inn);
            state.apply_swap(out, inn);
            current.retain(|&u| u != out);
            current.push(inn);

            let sub = induced_subgraph(&graph, &current).expect("valid selection");
            let expected = connected_components(&sub.graph).len();
            prop_assert_eq!(expected, state.components());
        }
    }

    /// Resize sequences: random shrink/grow chains through the
    /// articulation-point resize, with the component count of every
    /// intermediate selection pinned to the BFS oracle through a freshly
    /// built `SaState` (whose labels come from the union-find). Also pins
    /// the scratch-reuse contract: a reused scratch must give the same
    /// selections as fresh allocations.
    #[test]
    fn resize_sequences_components_match_oracle(
        seed in 0u64..10_000,
        nodes in 10usize..18,
    ) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.25, &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let mut scratch = ResizeScratch::default();
        let mut selection: Vec<usize> = (0..nodes).collect();
        for _ in 0..6 {
            let k = 2 + rng.gen_range(0..nodes - 1);
            let resized =
                resize_selection_with_scratch(&graph, &selection, k, &mut scratch).unwrap();
            prop_assert_eq!(resized.len(), k);

            let sub = induced_subgraph(&graph, &resized).expect("valid selection");
            let expected = connected_components(&sub.graph).len();
            let state = SaState::new(&graph, &resized, target, PENALTY).unwrap();
            prop_assert_eq!(expected, state.components());

            // Shrinks of a single-component selection must stay connected
            // (the articulation pass forbids evicting cut vertices).
            let before = {
                let sub = induced_subgraph(&graph, &selection).expect("valid selection");
                connected_components(&sub.graph).len()
            };
            if k < selection.len() && before == 1 {
                prop_assert_eq!(expected, 1);
            }
            selection = resized;
        }
    }
}
