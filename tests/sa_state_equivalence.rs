//! Property tests of the incremental SA move evaluator: over random
//! accepted/rejected move sequences, `SaState`'s objective, AND value, and
//! component count must be **exactly** (bitwise) equal to the from-scratch
//! `induced_subgraph` + `average_node_degree` + `connected_components`
//! computation, and its deduplicated boundary set must match the set of
//! outside nodes adjacent to the selection.

use graphlib::generators::connected_gnp;
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::{induced_subgraph, random_connected_subgraph};
use graphlib::traversal::connected_components;
use graphlib::Graph;
use mathkit::rng::seeded;
use proptest::prelude::*;
use rand::Rng;
use red_qaoa::annealing::{anneal_subgraph, SaOptions};
use red_qaoa::sa_state::SaState;

const PENALTY: f64 = 10.0;

/// The pre-incremental objective: rebuild the induced subgraph and rerun the
/// global metrics.
fn from_scratch(graph: &Graph, nodes: &[usize], target: f64) -> (f64, f64, usize) {
    let sub = induced_subgraph(graph, nodes).expect("valid selection");
    let and = average_node_degree(&sub.graph);
    let components = connected_components(&sub.graph).len();
    let value = (and - target).abs() + PENALTY * (components.saturating_sub(1)) as f64;
    (value, and, components)
}

fn expected_boundary(graph: &Graph, nodes: &[usize]) -> Vec<usize> {
    (0..graph.node_count())
        .filter(|&w| !nodes.contains(&w) && graph.neighbors(w).any(|x| nodes.contains(&x)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Evaluate/apply over a random move sequence: every candidate score and
    /// every committed state matches the from-scratch computation bit for
    /// bit.
    #[test]
    fn incremental_state_matches_from_scratch(
        seed in 0u64..10_000,
        nodes in 6usize..14,
        steps in 10usize..60,
    ) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.35, &mut rng).unwrap();
        let k = 2 + (seed as usize % (nodes - 2));
        let initial = random_connected_subgraph(&graph, k, &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let mut state = SaState::new(&graph, &initial.nodes, target, PENALTY).unwrap();
        let mut current: Vec<usize> = initial.nodes.clone();

        for _ in 0..steps {
            let Some((out, inn)) = state.propose(&mut rng) else { break };
            let mut candidate = current.clone();
            candidate.retain(|&u| u != out);
            candidate.push(inn);
            let (expected_value, _, _) = from_scratch(&graph, &candidate, target);
            let got = state.evaluate_swap(out, inn);
            prop_assert_eq!(expected_value.to_bits(), got.to_bits());
            // Random accept/reject, independent of the objective, so the
            // walk also visits disconnected (penalized) selections.
            if rng.gen::<bool>() {
                state.apply_swap(out, inn);
                current = candidate;
            }
            let (value, and, components) = from_scratch(&graph, &current, target);
            prop_assert_eq!(value.to_bits(), state.objective().to_bits());
            prop_assert_eq!(and.to_bits(), state.and_value().to_bits());
            prop_assert_eq!(components, state.components());

            let mut boundary = state.boundary().to_vec();
            boundary.sort_unstable();
            prop_assert_eq!(expected_boundary(&graph, &current), boundary);
        }
    }

    /// The annealer's reported objective is the from-scratch objective of
    /// the subgraph it returns (the incremental loop never drifts from the
    /// ground truth it is supposed to be tracking).
    #[test]
    fn anneal_outcome_objective_is_exact(seed in 0u64..5_000, nodes in 6usize..12) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.4, &mut rng).unwrap();
        let k = 2 + (seed as usize % (nodes - 2));
        let outcome = anneal_subgraph(&graph, k, &SaOptions::default(), &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let (value, _, _) = from_scratch(&graph, &outcome.subgraph.nodes, target);
        prop_assert_eq!(value.to_bits(), outcome.objective.to_bits());
    }
}
