//! Integration tests for the engine's file-backed persistent reduction
//! store (`EngineBuilder::persist_path`): round-trips across engine
//! instances must be bitwise-identical and counted as cache hits, and a
//! corrupted store file must degrade to recomputation, never to a failure.

use graphlib::generators::connected_gnp;
use mathkit::rng::seeded;
use red_qaoa::engine::{Engine, Job, ReduceJob};
use std::fs;
use std::path::PathBuf;

/// A fresh path under the cargo-managed tmpdir (wiped between test runs,
/// unique per test name so tests can run concurrently).
fn store_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join(format!("{name}.rqps"));
    let _ = fs::remove_file(&path);
    path
}

fn test_graph(seed: u64) -> graphlib::Graph {
    connected_gnp(12, 0.4, &mut seeded(seed)).unwrap()
}

#[test]
fn reductions_round_trip_through_the_store_bitwise_and_count_as_hits() {
    let path = store_path("round_trip");
    let graphs: Vec<_> = (0..3).map(test_graph).collect();

    // First engine: cold — every reduction is a miss, written through.
    let writer = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    let mut cold = Vec::new();
    for graph in &graphs {
        let out = writer
            .run(&Job::Reduce(ReduceJob::new(graph.clone())), 1)
            .unwrap();
        cold.push(out.as_reduced().unwrap().clone());
    }
    assert_eq!(writer.cache_stats().misses, 3);
    drop(writer);

    // Second engine, same path: the store warms the cache at build time, so
    // every request is a hit and the results are bitwise-identical.
    let reader = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    assert_eq!(reader.cache_stats().entries, 3, "store warmed the cache");
    for (graph, expected) in graphs.iter().zip(&cold) {
        let out = reader
            .run(&Job::Reduce(ReduceJob::new(graph.clone())), 99)
            .unwrap();
        assert_eq!(out.as_reduced().unwrap(), expected, "bitwise round-trip");
    }
    let stats = reader.cache_stats();
    assert_eq!((stats.hits, stats.misses), (3, 0), "all served from disk");
}

#[test]
fn a_corrupt_store_file_is_skipped_not_fatal() {
    let path = store_path("corrupt");
    let graph = test_graph(7);

    let writer = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    let expected = writer
        .run(&Job::Reduce(ReduceJob::new(graph.clone())), 1)
        .unwrap();
    drop(writer);

    // Flip bytes in the middle of the record payload.
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    bytes[mid + 1] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();

    // The engine must still build, drop the bad record, and recompute the
    // bitwise-identical reduction (content-derived substream).
    let reader = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    assert_eq!(reader.cache_stats().entries, 0, "bad record dropped");
    let out = reader.run(&Job::Reduce(ReduceJob::new(graph)), 1).unwrap();
    assert_eq!(out, expected, "recomputed bitwise-identically");
    assert_eq!(reader.cache_stats().misses, 1);
}

#[test]
fn garbage_and_truncated_store_files_are_recovered() {
    // Total garbage: reinitialized, engine builds and works.
    let path = store_path("garbage");
    fs::write(&path, b"this is not a store file at all").unwrap();
    let engine = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    assert_eq!(engine.cache_stats().entries, 0);
    engine
        .run(&Job::Reduce(ReduceJob::new(test_graph(3))), 1)
        .unwrap();
    drop(engine);

    // Torn tail (crash mid-append): the whole record survives, the tail is
    // healed, and appends keep working afterwards.
    let mut bytes = fs::read(&path).unwrap();
    let whole = bytes.len();
    bytes.extend_from_slice(&bytes.clone()[..10]);
    fs::write(&path, &bytes).unwrap();
    let engine = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    assert_eq!(engine.cache_stats().entries, 1, "whole record kept");
    engine
        .run(&Job::Reduce(ReduceJob::new(test_graph(4))), 1)
        .unwrap();
    drop(engine);
    assert!(fs::read(&path).unwrap().len() > whole, "append after heal");

    // And the healed file loads both records.
    let engine = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    assert_eq!(engine.cache_stats().entries, 2);
}

#[test]
fn an_unopenable_persist_path_names_the_field() {
    let missing_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("no_such_dir")
        .join("store.rqps");
    let err = Engine::builder()
        .persist_path(&missing_dir)
        .build()
        .unwrap_err();
    assert_eq!(err.field(), Some("persist_path"));
}

#[test]
fn persistence_and_capacity_zero_still_write_through() {
    // With the in-memory cache disabled the store still records misses, so
    // a later engine WITH a cache starts warm.
    let path = store_path("cap_zero");
    let graph = test_graph(5);
    let writer = Engine::builder()
        .threads(1)
        .cache_capacity(0)
        .persist_path(&path)
        .build()
        .unwrap();
    let expected = writer
        .run(&Job::Reduce(ReduceJob::new(graph.clone())), 1)
        .unwrap();
    drop(writer);

    let reader = Engine::builder()
        .threads(1)
        .persist_path(&path)
        .build()
        .unwrap();
    assert_eq!(reader.cache_stats().entries, 1);
    let out = reader.run(&Job::Reduce(ReduceJob::new(graph)), 2).unwrap();
    assert_eq!(out, expected);
    assert_eq!(reader.cache_stats().hits, 1);
}
