//! Golden-value regression tests for the statevector kernels.
//!
//! The differential suite (`tests/qsim_kernel_equivalence.rs`) proves the
//! scalar and vectorized kernels agree with *each other*; these tests pin
//! both to recorded constants so a future change that shifts either kernel
//! by a single ULP — a reassociated reduction, an FMA contraction, a
//! reordered butterfly — fails loudly instead of silently moving every
//! energy in the repo. The constants are `f64::to_bits` values recorded
//! from the PR that introduced the kernel split (same pattern as
//! `tests/warm_start_regression.rs`).
//!
//! Every expectation is asserted under **both** `KernelMode`s: the pinned
//! bits are the contract, kernel choice is an implementation detail.

use graphlib::generators::{connected_gnp, cycle};
use mathkit::rng::seeded;
use qaoa::expectation::QaoaInstance;
use qaoa::params::QaoaParams;
use qsim::circuit::{Circuit, Gate};
use qsim::statevector::{with_kernel, KernelMode, StateVector, StatevectorWorkspace};

/// A fixed 5-qubit circuit mixing every gate family the kernels implement.
fn pinned_circuit() -> Circuit {
    let mut c = Circuit::new(5);
    c.extend([
        Gate::H(0),
        Gate::Ry(1, 0.8),
        Gate::Cnot(0, 2),
        Gate::Rzz(1, 3, 0.9),
        Gate::Rx(4, -1.3),
        Gate::Cz(2, 4),
        Gate::T(3),
        Gate::Swap(0, 4),
        Gate::Rz(2, 2.2),
        Gate::H(3),
    ])
    .unwrap();
    c
}

fn for_both_kernels(check: impl Fn()) {
    for mode in [KernelMode::Scalar, KernelMode::Vectorized] {
        with_kernel(mode, &check);
    }
}

#[test]
fn expectation_zz_bits_are_pinned() {
    // ((a, b), recorded bits of expectation_zz(a, b)).
    let expected: [((usize, usize), u64); 4] = [
        ((0, 1), 0x3fc7daea0385bd10),
        ((1, 3), 0x0000000000000000),
        ((2, 4), 0x3ff0000000000002),
        ((0, 4), 0x3c90000000000000),
    ];
    for_both_kernels(|| {
        let sv = StateVector::from_circuit(&pinned_circuit());
        for ((a, b), bits) in expected {
            assert_eq!(
                sv.expectation_zz(a, b).to_bits(),
                bits,
                "expectation_zz({a}, {b}) drifted"
            );
        }
    });
}

#[test]
fn expectation_diagonal_and_norm_bits_are_pinned() {
    for_both_kernels(|| {
        let sv = StateVector::from_circuit(&pinned_circuit());
        let values: Vec<f64> = (0..32).map(|i| (i as f64) * 0.25 - 3.5).collect();
        assert_eq!(
            sv.expectation_diagonal(&values).to_bits(),
            0x3fc56ce74783d488,
            "expectation_diagonal drifted"
        );
        assert_eq!(
            sv.norm_sqr().to_bits(),
            0x3ff0000000000002,
            "norm_sqr drifted"
        );
    });
}

#[test]
fn scheduled_circuit_expectation_bits_are_pinned() {
    // Depth-scheduled cost layers (PR 10): the `ScheduledCircuitEvaluator`
    // simulates the explicit round-major `RZZ` gate sequence the greedy
    // interaction scheduler emits, not the phase-table shortcut. The gate
    // *order* is part of the floating-point result, so these pins lock the
    // scheduler's round assignment (lowest-index tie-breaks) as well as the
    // kernels: a future change to either moves these bits.
    use qaoa::evaluator::{EnergyEvaluator, ScheduledCircuitEvaluator};
    let params = QaoaParams::new(vec![0.7], vec![0.4]).unwrap();
    let graphs = [
        ("cycle8", cycle(8).unwrap(), 0x4017e1572a7fa90eu64),
        (
            "gnp9",
            connected_gnp(9, 0.4, &mut seeded(77)).unwrap(),
            0x4022f538eb314ce2,
        ),
        (
            "gnp10",
            connected_gnp(10, 0.3, &mut seeded(78)).unwrap(),
            0x4021344352dcebab,
        ),
    ];
    for_both_kernels(|| {
        for (name, graph, bits) in &graphs {
            let evaluator = ScheduledCircuitEvaluator::new(graph, 1).unwrap();
            let value = evaluator.energy(&mut evaluator.scratch(), 0, &params);
            assert_eq!(
                value.to_bits(),
                *bits,
                "scheduled p=1 expectation on {name} drifted"
            );
        }
    });
}

#[test]
fn scheduled_three_layer_expectation_bits_are_pinned() {
    // Same contract at p = 3: every layer re-emits the scheduled rounds, so
    // these pins cover the round-major emission repeated across layers.
    use qaoa::evaluator::{EnergyEvaluator, ScheduledCircuitEvaluator};
    let params = QaoaParams::new(vec![0.7, 0.35, 0.21], vec![0.4, 0.55, 0.13]).unwrap();
    let graphs = [
        ("cycle8", cycle(8).unwrap(), 0x400b4ae7159c05e1u64),
        (
            "gnp9",
            connected_gnp(9, 0.4, &mut seeded(77)).unwrap(),
            0x401cc9c3e16caa02,
        ),
    ];
    for_both_kernels(|| {
        for (name, graph, bits) in &graphs {
            let evaluator = ScheduledCircuitEvaluator::new(graph, 3).unwrap();
            let value = evaluator.energy(&mut evaluator.scratch(), 0, &params);
            assert_eq!(
                value.to_bits(),
                *bits,
                "scheduled p=3 expectation on {name} drifted"
            );
        }
    });
}

#[test]
fn three_layer_qaoa_expectation_bits_are_pinned() {
    // Recorded `expectation_with` bits for a 3-layer ansatz on three fixed
    // graphs, all evaluated through one reused workspace (so this also pins
    // the evolve → phase-diagonal → expectation pipeline end to end).
    let params = QaoaParams::new(vec![0.7, 0.35, 0.21], vec![0.4, 0.55, 0.13]).unwrap();
    let graphs = [
        ("cycle8", cycle(8).unwrap(), 0x400b4ae7159c05e8u64),
        (
            "gnp9",
            connected_gnp(9, 0.4, &mut seeded(77)).unwrap(),
            0x401cc9c3e16caa13,
        ),
        (
            "gnp10",
            connected_gnp(10, 0.3, &mut seeded(78)).unwrap(),
            0x401a626396a20c92,
        ),
    ];
    for_both_kernels(|| {
        let mut workspace = StatevectorWorkspace::new();
        for (name, graph, bits) in &graphs {
            let instance = QaoaInstance::new(graph, 3).unwrap();
            assert_eq!(
                instance.expectation_with(&mut workspace, &params).to_bits(),
                *bits,
                "3-layer expectation on {name} drifted"
            );
        }
    });
}
