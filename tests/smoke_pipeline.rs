//! Workspace smoke test: one pass of the full Red-QAOA pipeline
//! (reduce → simulate → anneal → MSE) on a small Erdős–Rényi graph.
//!
//! This is the fastest end-to-end signal that the workspace is wired
//! correctly: it touches graphlib (generation), red_qaoa (SA annealing,
//! reduction, pipeline, MSE), qaoa (expectations), and qsim (noisy
//! trajectory simulation) in a single deterministic run.

use graphlib::generators::connected_gnp;
use graphlib::traversal::is_connected;
use mathkit::rng::seeded;
use qaoa::optimize::OptimizeOptions;
use qsim::devices::fake_toronto;
use red_qaoa::annealing::{anneal_subgraph, SaOptions};
use red_qaoa::mse::ideal_sample_mse;
use red_qaoa::pipeline::{run_noisy, CircuitReduction, PipelineOptions};
use red_qaoa::reduction::{reduce, ReductionOptions};

#[test]
fn full_pipeline_smoke_on_small_er_graph() {
    let mut rng = seeded(0xC0FFEE);
    let graph = connected_gnp(9, 0.4, &mut rng).unwrap();

    // Step 1: SA-driven reduction (binary search over subgraph sizes).
    let reduced = reduce(&graph, &ReductionOptions::default(), &mut rng).unwrap();
    assert!(reduced.graph().node_count() < graph.node_count());
    assert!(reduced.graph().node_count() >= 2);
    assert!(is_connected(reduced.graph()));

    // The direct SA search at a fixed size also produces a valid subgraph.
    let k = graph.node_count() - 2;
    let sa = anneal_subgraph(&graph, k, &SaOptions::default(), &mut rng).unwrap();
    assert_eq!(sa.subgraph.graph.node_count(), k);
    assert!(is_connected(&sa.subgraph.graph));

    // Step 2: ideal landscape fidelity of the reduction is finite and small.
    let mse = ideal_sample_mse(&graph, reduced.graph(), 1, 32, &mut rng).unwrap();
    assert!(mse.is_finite());
    assert!(mse >= 0.0);
    assert!(mse < 0.2, "reduction landscape mse {mse} out of range");

    // Step 3: the noisy end-to-end pipeline runs and reports sane values.
    let options = PipelineOptions {
        layers: 1,
        reduction: ReductionOptions::default(),
        optimize: OptimizeOptions {
            restarts: 1,
            max_iters: 25,
        },
        refine_iters: 10,
        circuit: CircuitReduction::None,
    };
    let noise = fake_toronto().noise;
    let outcome = run_noisy(&graph, &options, &noise, 6, &mut rng).unwrap();
    assert!(outcome.red_qaoa_ideal_value.is_finite());
    assert!(outcome.red_qaoa_ideal_value > 0.0);
    assert!(outcome.red_qaoa_ideal_value <= graph.edge_count() as f64);

    // Determinism: the same seed reproduces the same reduction.
    let again = reduce(&graph, &ReductionOptions::default(), &mut seeded(0xBEEF)).unwrap();
    let again2 = reduce(&graph, &ReductionOptions::default(), &mut seeded(0xBEEF)).unwrap();
    assert_eq!(again.subgraph.nodes, again2.subgraph.nodes);
}
