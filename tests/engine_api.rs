//! API-surface tests of the `red_qaoa::engine` front door (PR 5).
//!
//! One test per [`RedQaoaError`] variant exercises the validating builders
//! and the engine's job checks, asserting that the contextual messages name
//! the offending field; the remaining tests pin the cache contract (a
//! repeated (graph, config) pair returns the identical `ReducedGraph`
//! without re-annealing) and the delegating low-level wrappers.

use graphlib::generators::{connected_gnp, cycle};
use mathkit::rng::seeded;
use qaoa::optimize::{NelderMeadOptimizer, OptimizerConfig, SpsaOptimizer};
use red_qaoa::annealing::SaOptions;
use red_qaoa::engine::{
    Engine, Job, LandscapeJob, OptimizeJob, PipelineJob, ReduceJob, ThroughputJob,
};
use red_qaoa::reduction::{reduce, ReductionOptions};
use red_qaoa::RedQaoaError;

fn test_graph(seed: u64) -> graphlib::Graph {
    connected_gnp(10, 0.4, &mut seeded(seed)).unwrap()
}

// ---------------------------------------------------------------------------
// RedQaoaError::InvalidParameter — builder validation names the field.
// ---------------------------------------------------------------------------

#[test]
fn invalid_parameter_bad_and_ratio_threshold_names_the_field() {
    for bad in [0.0, -0.5, 1.5, f64::NAN] {
        let err = ReductionOptions::builder()
            .and_ratio_threshold(bad)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), Some("and_ratio_threshold"), "value {bad}");
        assert!(
            err.to_string().contains("and_ratio_threshold"),
            "message must name the field: {err}"
        );
    }
}

#[test]
fn invalid_parameter_bad_min_size_fraction_names_the_field() {
    for bad in [-0.1, 1.1, f64::NAN] {
        let err = ReductionOptions::builder()
            .min_size_fraction(bad)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), Some("min_size_fraction"), "value {bad}");
        assert!(err.to_string().contains("min_size_fraction"), "{err}");
    }
}

#[test]
fn invalid_parameter_sa_builder_names_each_field() {
    let cases: [(&str, SaOptions); 4] = [
        (
            "final_temp",
            SaOptions {
                final_temp: -1.0,
                ..Default::default()
            },
        ),
        (
            "initial_temp",
            SaOptions {
                initial_temp: 1e-4,
                final_temp: 1e-3,
                ..Default::default()
            },
        ),
        (
            "boost_divisor",
            SaOptions {
                boost_divisor: 0.0,
                ..Default::default()
            },
        ),
        (
            "cooling",
            SaOptions {
                cooling: red_qaoa::annealing::CoolingSchedule::Constant(1.5),
                ..Default::default()
            },
        ),
    ];
    for (field, options) in cases {
        let err = options.validate().unwrap_err();
        assert_eq!(err.field(), Some(field));
        assert!(err.to_string().contains(field), "{err}");
        // The same failure surfaces from EngineBuilder::build, still naming
        // the field — invalid configs are rejected before any job runs.
        let err = Engine::builder().sa(options).build().unwrap_err();
        assert_eq!(err.field(), Some(field));
    }
}

#[test]
fn invalid_parameter_unsatisfiable_min_size_carries_the_value() {
    let engine = Engine::builder().build().unwrap();
    let options = ReductionOptions {
        min_size: 64,
        ..Default::default()
    };
    let job = Job::Reduce(ReduceJob::new(cycle(8).unwrap()).with_options(options));
    let err = engine.run(&job, 1).unwrap_err();
    assert_eq!(err.field(), Some("min_size"));
    let message = err.to_string();
    assert!(
        message.contains("min_size") && message.contains("64"),
        "{message}"
    );
}

#[test]
fn invalid_parameter_optimize_job_names_each_field() {
    let engine = Engine::builder().build().unwrap();
    let graph = test_graph(30);
    let base = || OptimizeJob::new(graph.clone()).with_max_iters(10);
    let cases: [(&str, OptimizeJob); 7] = [
        ("layers", base().with_layers(0)),
        ("max_iters", base().with_max_iters(0)),
        ("restarts", base().with_restarts(0)),
        (
            "nelder_mead.initial_step",
            base().with_optimizer(OptimizerConfig::NelderMead(NelderMeadOptimizer {
                initial_step: 0.0,
                ..Default::default()
            })),
        ),
        (
            "nelder_mead.f_tol",
            base().with_optimizer(OptimizerConfig::NelderMead(NelderMeadOptimizer {
                f_tol: f64::NAN,
                ..Default::default()
            })),
        ),
        (
            "spsa.a",
            base().with_optimizer(OptimizerConfig::Spsa(SpsaOptimizer {
                a: -1.0,
                ..Default::default()
            })),
        ),
        (
            "spsa.c",
            base().with_optimizer(OptimizerConfig::Spsa(SpsaOptimizer {
                c: f64::INFINITY,
                ..Default::default()
            })),
        ),
    ];
    for (field, job) in cases {
        let err = engine.run(&Job::Optimize(job), 1).unwrap_err();
        assert_eq!(err.field(), Some(field), "{err}");
        assert!(err.to_string().contains(field), "{err}");
    }
    // Every rejection happened before any annealing or optimization ran.
    assert_eq!(engine.cache_stats().misses, 0);
}

// ---------------------------------------------------------------------------
// RedQaoaError::GraphNotReducible — degenerate job graphs.
// ---------------------------------------------------------------------------

#[test]
fn graph_not_reducible_for_zero_node_graph() {
    let engine = Engine::builder().build().unwrap();
    let err = engine
        .run(&Job::Reduce(ReduceJob::new(graphlib::Graph::new(0))), 1)
        .unwrap_err();
    assert!(matches!(err, RedQaoaError::GraphNotReducible(_)), "{err}");
}

// ---------------------------------------------------------------------------
// RedQaoaError::EmptyInput — nothing usable left after filtering.
// ---------------------------------------------------------------------------

#[test]
fn empty_input_for_a_dataset_with_no_reducible_graph() {
    let err = red_qaoa::throughput::dataset_relative_throughput(
        &[],
        27,
        1,
        &ReductionOptions::default(),
        &mut seeded(1),
    )
    .unwrap_err();
    assert!(matches!(err, RedQaoaError::EmptyInput(_)), "{err}");
}

// ---------------------------------------------------------------------------
// RedQaoaError::Job — batch failures carry their index.
// ---------------------------------------------------------------------------

#[test]
fn job_errors_carry_the_batch_index() {
    let engine = Engine::builder().build().unwrap();
    let jobs = vec![
        Job::Reduce(ReduceJob::new(test_graph(1))),
        Job::Landscape(LandscapeJob::new(test_graph(2), 0)), // width 0: invalid
        Job::Pipeline(PipelineJob::new(test_graph(3)).noisy(4)), // no noise model
    ];
    let results = engine.run_batch(&jobs, 5);
    assert!(results[0].is_ok());
    match results[1].as_ref().unwrap_err() {
        RedQaoaError::Job { index, source } => {
            assert_eq!(*index, 1);
            assert_eq!(source.field(), Some("width"));
        }
        other => panic!("expected Job error, got {other}"),
    }
    match results[2].as_ref().unwrap_err() {
        RedQaoaError::Job { index, source } => {
            assert_eq!(*index, 2);
            assert_eq!(source.field(), Some("noisy_trajectories"));
        }
        other => panic!("expected Job error, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// RedQaoaError::Graph / RedQaoaError::Qaoa — substrate conversions.
// ---------------------------------------------------------------------------

#[test]
fn graph_and_qaoa_errors_convert_and_chain() {
    use std::error::Error;
    let graph_err: RedQaoaError = graphlib::GraphError::SelfLoop(2).into();
    assert!(matches!(graph_err, RedQaoaError::Graph(_)));
    assert!(graph_err.source().is_some());
    let qaoa_err: RedQaoaError = qaoa::QaoaError::DegenerateGraph.into();
    assert!(matches!(qaoa_err, RedQaoaError::Qaoa(_)));
    // A landscape job on an edgeless graph surfaces the QAOA conversion.
    let engine = Engine::builder().build().unwrap();
    let err = engine
        .run(
            &Job::Landscape(LandscapeJob::new(graphlib::Graph::new(4), 3)),
            1,
        )
        .unwrap_err();
    assert!(matches!(err, RedQaoaError::Qaoa(_)), "{err}");
}

// ---------------------------------------------------------------------------
// Cache contract and low-level wrappers.
// ---------------------------------------------------------------------------

#[test]
fn repeated_graph_config_pairs_are_served_from_the_cache() {
    let engine = Engine::builder().threads(1).build().unwrap();
    let graph = test_graph(10);
    let jobs = vec![
        Job::Reduce(ReduceJob::new(graph.clone())),
        Job::Throughput(ThroughputJob::new(graph.clone(), 27, 1)),
        Job::Reduce(ReduceJob::new(graph)),
    ];
    // Different batch seeds must not matter: reductions are content-addressed.
    let first = engine.run_batch(&jobs, 1);
    let second = engine.run_batch(&jobs, 2);
    assert_eq!(
        first[0].as_ref().unwrap().as_reduced().unwrap(),
        first[2].as_ref().unwrap().as_reduced().unwrap(),
    );
    assert_eq!(
        first[0].as_ref().unwrap().as_reduced().unwrap(),
        second[0].as_ref().unwrap().as_reduced().unwrap(),
    );
    let stats = engine.cache_stats();
    // Six reductions served (three jobs twice), exactly one annealed.
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits, 5, "{stats:?}");
    assert_eq!(stats.entries, 1, "{stats:?}");
}

#[test]
fn per_job_pipeline_options_are_validated_before_any_work() {
    let engine = Engine::builder().build().unwrap();
    let bad = red_qaoa::pipeline::PipelineOptions {
        optimize: qaoa::optimize::OptimizeOptions {
            restarts: 0,
            max_iters: 10,
        },
        ..Default::default()
    };
    let job = Job::Pipeline(PipelineJob::new(test_graph(20)).with_options(bad));
    let err = engine.run(&job, 1).unwrap_err();
    assert_eq!(err.field(), Some("restarts"));
    // Rejected before any annealing or optimization ran.
    assert_eq!(engine.cache_stats().misses, 0);
}

#[test]
fn explicitly_set_pipeline_keeps_its_own_reduction_options() {
    let custom = ReductionOptions::builder()
        .and_ratio_threshold(0.9)
        .build()
        .unwrap();
    let engine = Engine::builder()
        .pipeline(red_qaoa::pipeline::PipelineOptions {
            reduction: custom,
            ..Default::default()
        })
        .build()
        .unwrap();
    assert_eq!(engine.pipeline_options().reduction, custom);
    // Without an explicit pipeline, the default one follows the engine's
    // reduction options so ReduceJobs and PipelineJobs share cache entries.
    let strict = ReductionOptions::builder()
        .and_ratio_threshold(0.8)
        .build()
        .unwrap();
    let engine = Engine::builder().reduction(strict).build().unwrap();
    assert_eq!(engine.pipeline_options().reduction, strict);
}

#[test]
fn free_reduce_remains_the_validating_low_level_wrapper() {
    // The delegating free functions keep their own validation (they are the
    // documented low-level layer), with the new contextual errors.
    let graph = test_graph(11);
    let bad = ReductionOptions {
        and_ratio_threshold: 0.0,
        ..Default::default()
    };
    let err = reduce(&graph, &bad, &mut seeded(1)).unwrap_err();
    assert_eq!(err.field(), Some("and_ratio_threshold"));
}
