//! Property-based tests of the cross-crate invariants the paper relies on.

use graphlib::generators::{connected_gnp, cycle};
use graphlib::metrics::average_node_degree;
use graphlib::subgraph::random_connected_subgraph;
use graphlib::traversal::is_connected;
use mathkit::rng::seeded;
use proptest::prelude::*;
use qaoa::analytic::analytic_expectation_p1;
use qaoa::expectation::QaoaInstance;
use qaoa::maxcut::{brute_force_maxcut, cut_values};
use qaoa::params::{QaoaParams, BETA_MAX, GAMMA_MAX};
use red_qaoa::annealing::{anneal_subgraph, SaOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The analytic p = 1 formula agrees with the statevector simulator on
    /// arbitrary connected random graphs and parameters.
    #[test]
    fn analytic_p1_matches_statevector(
        seed in 0u64..1000,
        nodes in 4usize..9,
        gamma in 0.0f64..GAMMA_MAX,
        beta in 0.0f64..BETA_MAX,
    ) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.5, &mut rng).unwrap();
        prop_assume!(graph.edge_count() > 0);
        let params = QaoaParams::new(vec![gamma], vec![beta]).unwrap();
        let exact = QaoaInstance::new(&graph, 1).unwrap().expectation(&params);
        let analytic = analytic_expectation_p1(&graph, &params).unwrap();
        prop_assert!((exact - analytic).abs() < 1e-7, "exact {exact} vs analytic {analytic}");
    }

    /// The QAOA expectation never exceeds the brute-force MaxCut optimum and
    /// never drops below zero.
    #[test]
    fn qaoa_expectation_is_bounded_by_ground_truth(
        seed in 0u64..1000,
        nodes in 4usize..8,
        gamma in 0.0f64..GAMMA_MAX,
        beta in 0.0f64..BETA_MAX,
    ) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.5, &mut rng).unwrap();
        prop_assume!(graph.edge_count() > 0);
        let params = QaoaParams::new(vec![gamma], vec![beta]).unwrap();
        let value = QaoaInstance::new(&graph, 1).unwrap().expectation(&params);
        let best = brute_force_maxcut(&graph).unwrap().best_cut as f64;
        prop_assert!(value >= -1e-9);
        prop_assert!(value <= best + 1e-9, "expectation {value} above optimum {best}");
    }

    /// The cut-value table is consistent with complement symmetry: flipping
    /// every bit of an assignment leaves the cut unchanged.
    #[test]
    fn cut_values_are_complement_symmetric(seed in 0u64..1000, nodes in 2usize..10) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.4, &mut rng).unwrap();
        let table = cut_values(&graph).unwrap();
        let mask = (1usize << nodes) - 1;
        for (z, &value) in table.iter().enumerate() {
            prop_assert_eq!(value, table[z ^ mask]);
        }
    }

    /// Simulated annealing always returns a connected induced subgraph of the
    /// requested size whose AND never exceeds the original's by more than the
    /// structural maximum.
    #[test]
    fn sa_returns_connected_subgraph_of_requested_size(
        seed in 0u64..1000,
        nodes in 6usize..12,
    ) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(nodes, 0.4, &mut rng).unwrap();
        let k = nodes - 2;
        let outcome = anneal_subgraph(&graph, k, &SaOptions::default(), &mut rng).unwrap();
        prop_assert_eq!(outcome.subgraph.graph.node_count(), k);
        prop_assert!(is_connected(&outcome.subgraph.graph));
        // An induced subgraph can never have more edges than the original.
        prop_assert!(outcome.subgraph.graph.edge_count() <= graph.edge_count());
    }

    /// SA's AND match is at least as good as a random connected subgraph of
    /// the same size drawn with the same seed family.
    #[test]
    fn sa_matches_and_at_least_as_well_as_random(seed in 0u64..200) {
        let mut rng = seeded(seed);
        let graph = connected_gnp(12, 0.4, &mut rng).unwrap();
        let target = average_node_degree(&graph);
        let k = 8;
        // The production protocol (ReductionOptions::sa_runs = 2): the
        // adaptive schedule deliberately terminates stagnating runs early
        // since the plateau-stagnation fix, and the reduction layer hedges
        // that with independent restarts. A single truncated run can lose to
        // a lucky random draw; the best of two must not.
        let sa_gap = (0..2u64)
            .map(|run| {
                let mut sa_rng = seeded(mathkit::rng::derive_seed(seed + 1, run));
                let sa = anneal_subgraph(&graph, k, &SaOptions::default(), &mut sa_rng).unwrap();
                (average_node_degree(&sa.subgraph.graph) - target).abs()
            })
            .fold(f64::INFINITY, f64::min);
        let random = random_connected_subgraph(&graph, k, &mut seeded(seed + 2)).unwrap();
        let random_gap = (average_node_degree(&random.graph) - target).abs();
        prop_assert!(sa_gap <= random_gap + 1e-9, "sa {sa_gap} vs random {random_gap}");
    }
}

#[test]
fn cycle_family_landscapes_are_interchangeable() {
    // Deterministic version of the Figure 3 observation, across several sizes.
    let reference = QaoaInstance::new(&cycle(8).unwrap(), 1).unwrap();
    let params = QaoaParams::new(vec![1.1], vec![0.6]).unwrap();
    let reference_value = reference.expectation(&params) / 8.0;
    for n in [5usize, 6, 9, 11] {
        let instance = QaoaInstance::new(&cycle(n).unwrap(), 1).unwrap();
        let normalized = instance.expectation(&params) / n as f64;
        // Odd and even cycles differ only through parity effects that vanish
        // in the per-edge expectation for p = 1.
        assert!(
            (normalized - reference_value).abs() < 0.02,
            "cycle {n}: {normalized} vs {reference_value}"
        );
    }
}
