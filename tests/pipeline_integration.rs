//! Cross-crate integration tests: dataset generation → graph reduction →
//! QAOA evaluation → pipeline outcomes.

use datasets::{aids, linux};
use graphlib::generators::connected_gnp;
use graphlib::traversal::is_connected;
use mathkit::rng::seeded;
use qaoa::expectation::QaoaInstance;
use qaoa::optimize::OptimizeOptions;
use qsim::devices::fake_toronto;
use red_qaoa::mse::ideal_sample_mse;
use red_qaoa::pipeline::{run_ideal, run_noisy, CircuitReduction, PipelineOptions};
use red_qaoa::reduction::{reduce, ReductionOptions};

fn quick_pipeline() -> PipelineOptions {
    PipelineOptions {
        layers: 1,
        reduction: ReductionOptions::default(),
        optimize: OptimizeOptions {
            restarts: 2,
            max_iters: 40,
        },
        refine_iters: 20,
        circuit: CircuitReduction::None,
    }
}

#[test]
fn dataset_graphs_reduce_and_preserve_landscapes() {
    let mut rng = seeded(1);
    let corpus = aids(9).filter_by_nodes(6, 10).take(5);
    assert!(!corpus.is_empty());
    for graph in &corpus.graphs {
        let reduced = reduce(graph, &ReductionOptions::default(), &mut rng).unwrap();
        // The reduced graph is a connected induced subgraph of the original.
        assert!(is_connected(reduced.graph()));
        assert!(reduced.graph().node_count() <= graph.node_count());
        for (i, &orig) in reduced.subgraph.nodes.iter().enumerate() {
            assert!(orig < graph.node_count());
            for (j, &other) in reduced.subgraph.nodes.iter().enumerate() {
                if reduced.graph().has_edge(i, j) {
                    assert!(graph.has_edge(orig, other));
                }
            }
        }
        // Landscape fidelity stays within the paper's few-percent regime.
        let mse = ideal_sample_mse(graph, reduced.graph(), 1, 48, &mut rng).unwrap();
        assert!(mse < 0.12, "mse {mse} too large for {graph}");
    }
}

#[test]
fn ideal_pipeline_outperforms_random_parameters() {
    let mut rng = seeded(2);
    let graph = connected_gnp(10, 0.4, &mut rng).unwrap();
    let outcome = run_ideal(&graph, &quick_pipeline(), &mut rng).unwrap();
    let instance = QaoaInstance::new(&graph, 1).unwrap();
    // Random parameters give |E|/2 in expectation.
    let random_baseline = graph.edge_count() as f64 / 2.0;
    assert!(outcome.final_value > random_baseline);
    assert!(outcome.relative_best() > 0.85);
    // The transferred parameters alone (before refinement) are already above
    // the random baseline — the transferability claim.
    assert!(instance.expectation(&outcome.transferred_params) > random_baseline);
}

#[test]
fn noisy_pipeline_runs_on_kernel_callgraph_corpus() {
    let mut rng = seeded(3);
    let corpus = linux(5).filter_by_nodes(7, 9).take(2);
    let noise = fake_toronto().noise;
    for graph in &corpus.graphs {
        let outcome = run_noisy(graph, &quick_pipeline(), &noise, 8, &mut rng).unwrap();
        assert!(outcome.red_qaoa_ideal_value > 0.0);
        assert!(outcome.baseline_ideal_value > 0.0);
        // Both approaches must stay within the physically possible range.
        assert!(outcome.red_qaoa_ideal_value <= graph.edge_count() as f64);
        assert!(outcome.baseline_ideal_value <= graph.edge_count() as f64);
    }
}

#[test]
fn reduction_is_deterministic_for_a_fixed_seed() {
    let graph = connected_gnp(12, 0.4, &mut seeded(7)).unwrap();
    let a = reduce(&graph, &ReductionOptions::default(), &mut seeded(99)).unwrap();
    let b = reduce(&graph, &ReductionOptions::default(), &mut seeded(99)).unwrap();
    assert_eq!(a.subgraph.nodes, b.subgraph.nodes);
    assert_eq!(a.graph(), b.graph());
}
