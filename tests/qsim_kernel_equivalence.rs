//! Differential kernel-oracle suite: the vectorized statevector kernels
//! must be **bitwise-identical** to the scalar reference kernels on random
//! circuits — same amplitude bits after every gate, same probability bits,
//! same reduction bits (`prob_one`, `norm_sqr`, `expectation_*`).
//!
//! Two layers of checking:
//!
//! * The module-level tests call `qsim::statevector::reference` and
//!   `qsim::statevector::vectorized` free functions directly on cloned
//!   amplitude buffers — no global state involved, so this is the airtight
//!   proof of equivalence even when other tests in this binary toggle the
//!   process-wide kernel override concurrently.
//! * The API-level test drives two `StateVector`s through
//!   `with_kernel(Scalar, …)` / `with_kernel(Vectorized, …)` to confirm the
//!   dispatch layer routes to the right kernels end-to-end.
//!
//! Why bitwise and not tolerance-based: the determinism contract
//! (`docs/determinism.md`) pins every result to exact bits across thread
//! counts, and `RED_QAOA_KERNEL` must be an operational knob that can never
//! change a result. A single ULP of drift here would silently invalidate
//! every golden value downstream.

use mathkit::rng::seeded;
use mathkit::Complex64;
use proptest::prelude::*;
use qsim::circuit::Gate;
use qsim::statevector::{reference, vectorized, with_kernel, KernelMode, StateVector};
use rand::Rng;

/// Samples one random gate over `n` qubits (single-qubit only when `n == 1`).
fn random_gate<R: Rng>(n: usize, rng: &mut R) -> Gate {
    let q = rng.gen_range(0..n);
    let angle = rng.gen_range(-3.5f64..6.5);
    let kinds = if n > 1 { 14 } else { 10 };
    match rng.gen_range(0..kinds) {
        0 => Gate::H(q),
        1 => Gate::X(q),
        2 => Gate::Y(q),
        3 => Gate::Z(q),
        4 => Gate::S(q),
        5 => Gate::Sdg(q),
        6 => Gate::T(q),
        7 => Gate::Rx(q, angle),
        8 => Gate::Ry(q, angle),
        9 => Gate::Rz(q, angle),
        two_qubit => {
            let mut r = rng.gen_range(0..n - 1);
            if r >= q {
                r += 1;
            }
            match two_qubit {
                10 => Gate::Cnot(q, r),
                11 => Gate::Cz(q, r),
                12 => Gate::Swap(q, r),
                _ => Gate::Rzz(q, r, angle),
            }
        }
    }
}

/// A random non-trivial starting state (random circuit from `|0…0⟩`), so the
/// kernels are exercised on dense complex amplitudes rather than the sparse
/// initial basis state.
fn random_state<R: Rng>(n: usize, gates: usize, rng: &mut R) -> StateVector {
    let mut sv = StateVector::uniform_superposition(n);
    for _ in 0..gates {
        sv.apply_gate(random_gate(n, rng));
    }
    sv
}

fn amplitude_bits(amplitudes: &[Complex64]) -> Vec<(u64, u64)> {
    amplitudes
        .iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Direct module differential: every gate kernel produces identical
    /// amplitude bits to its scalar oracle, checked after **every** gate of
    /// a random circuit, and every reduction produces identical result bits
    /// on the evolving state.
    #[test]
    fn vectorized_gates_match_scalar_oracle_bitwise(
        seed in 0u64..100_000,
        qubits in 1usize..=10,
        gate_count in 5usize..40,
    ) {
        let mut rng = seeded(seed);
        let mut scalar: Vec<Complex64> =
            random_state(qubits, 6, &mut rng).amplitudes().to_vec();
        let mut fast = scalar.clone();
        for step in 0..gate_count {
            let gate = random_gate(qubits, &mut rng);
            match gate {
                Gate::Cnot(c, t) => {
                    reference::apply_cnot(&mut scalar, c, t);
                    vectorized::apply_cnot(&mut fast, c, t);
                }
                Gate::Cz(a, b) => {
                    reference::apply_cz(&mut scalar, a, b);
                    vectorized::apply_cz(&mut fast, a, b);
                }
                Gate::Swap(a, b) => {
                    reference::apply_swap(&mut scalar, a, b);
                    vectorized::apply_swap(&mut fast, a, b);
                }
                Gate::Rzz(a, b, theta) => {
                    reference::apply_rzz(&mut scalar, a, b, theta);
                    vectorized::apply_rzz(&mut fast, a, b, theta);
                }
                single => {
                    let target = single.qubits()[0];
                    let u = single_qubit_matrix(single);
                    reference::apply_single(&mut scalar, target, u);
                    vectorized::apply_single(&mut fast, target, u);
                }
            }
            prop_assert!(
                amplitude_bits(&scalar) == amplitude_bits(&fast),
                "amplitudes diverged after gate {step} ({gate:?})"
            );
            prop_assert_eq!(
                reference::norm_sqr(&scalar).to_bits(),
                vectorized::norm_sqr(&fast).to_bits()
            );
            for q in 0..qubits {
                prop_assert_eq!(
                    reference::prob_one(&scalar, q).to_bits(),
                    vectorized::prob_one(&fast, q).to_bits()
                );
                prop_assert_eq!(
                    reference::expectation_z(&scalar, q).to_bits(),
                    vectorized::expectation_z(&fast, q).to_bits()
                );
            }
        }
    }

    /// Pairwise reductions and diagonals: `expectation_zz` over every qubit
    /// pair, `expectation_diagonal` and `apply_diagonal` over a random
    /// diagonal, bitwise-equal between the two modules.
    #[test]
    fn vectorized_reductions_match_scalar_oracle_bitwise(
        seed in 0u64..100_000,
        qubits in 2usize..=10,
    ) {
        let mut rng = seeded(seed);
        let scalar: Vec<Complex64> =
            random_state(qubits, 25, &mut rng).amplitudes().to_vec();
        let fast = scalar.clone();
        for a in 0..qubits {
            for b in 0..qubits {
                if a == b {
                    continue;
                }
                prop_assert!(
                    reference::expectation_zz(&scalar, a, b).to_bits()
                        == vectorized::expectation_zz(&fast, a, b).to_bits(),
                    "expectation_zz({a}, {b}) diverged"
                );
            }
        }
        let values: Vec<f64> = (0..scalar.len())
            .map(|_| rng.gen_range(-4.0f64..4.0))
            .collect();
        prop_assert_eq!(
            reference::expectation_diagonal(&scalar, &values).to_bits(),
            vectorized::expectation_diagonal(&fast, &values).to_bits()
        );
        let phases: Vec<Complex64> = values.iter().map(|&v| Complex64::cis(v)).collect();
        let mut scalar_d = scalar.clone();
        let mut fast_d = fast.clone();
        reference::apply_diagonal(&mut scalar_d, &phases);
        vectorized::apply_diagonal(&mut fast_d, &phases);
        prop_assert_eq!(amplitude_bits(&scalar_d), amplitude_bits(&fast_d));
    }

    /// API-level differential: the same random circuit executed through
    /// `with_kernel(Scalar)` and `with_kernel(Vectorized)` yields identical
    /// amplitude, probability, and expectation bits (this exercises the
    /// `StateVector` dispatch layer and the `probabilities` path on top of
    /// the raw kernels).
    #[test]
    fn kernel_modes_agree_through_the_statevector_api(
        seed in 0u64..100_000,
        qubits in 1usize..=8,
        gate_count in 5usize..30,
    ) {
        let run = |mode: KernelMode| {
            with_kernel(mode, || {
                let mut rng = seeded(seed);
                let sv = random_state(qubits, gate_count, &mut rng);
                let probs: Vec<u64> =
                    sv.probabilities().iter().map(|p| p.to_bits()).collect();
                let expectations: Vec<u64> = (0..qubits)
                    .map(|q| sv.expectation_z(q).to_bits())
                    .chain(std::iter::once(sv.norm_sqr().to_bits()))
                    .collect();
                (amplitude_bits(sv.amplitudes()), probs, expectations)
            })
        };
        prop_assert_eq!(run(KernelMode::Scalar), run(KernelMode::Vectorized));
    }
}

/// The single-qubit unitary matrix of a gate (panics on two-qubit gates).
/// Mirrors the matrix table in `StateVector::apply_gate` so the module-level
/// differential can exercise `apply_single` with every gate's actual matrix.
fn single_qubit_matrix(gate: Gate) -> [[Complex64; 2]; 2] {
    use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};
    let zero = Complex64::zero;
    let one = Complex64::one;
    match gate {
        Gate::H(_) => [
            [
                Complex64::new(FRAC_1_SQRT_2, 0.0),
                Complex64::new(FRAC_1_SQRT_2, 0.0),
            ],
            [
                Complex64::new(FRAC_1_SQRT_2, 0.0),
                Complex64::new(-FRAC_1_SQRT_2, 0.0),
            ],
        ],
        Gate::X(_) => [[zero(), one()], [one(), zero()]],
        Gate::Y(_) => [
            [zero(), Complex64::new(0.0, -1.0)],
            [Complex64::new(0.0, 1.0), zero()],
        ],
        Gate::Z(_) => [[one(), zero()], [zero(), Complex64::new(-1.0, 0.0)]],
        Gate::S(_) => [[one(), zero()], [zero(), Complex64::i()]],
        Gate::Sdg(_) => [[one(), zero()], [zero(), Complex64::new(0.0, -1.0)]],
        Gate::T(_) => [[one(), zero()], [zero(), Complex64::cis(FRAC_PI_4)]],
        Gate::Rx(_, theta) => {
            let c = Complex64::new((theta / 2.0).cos(), 0.0);
            let s = Complex64::new(0.0, -(theta / 2.0).sin());
            [[c, s], [s, c]]
        }
        Gate::Ry(_, theta) => {
            let c = Complex64::new((theta / 2.0).cos(), 0.0);
            let s = Complex64::new((theta / 2.0).sin(), 0.0);
            [[c, -s], [s, c]]
        }
        Gate::Rz(_, theta) => [
            [Complex64::cis(-theta / 2.0), zero()],
            [zero(), Complex64::cis(theta / 2.0)],
        ],
        other => panic!("not a single-qubit gate: {other:?}"),
    }
}
