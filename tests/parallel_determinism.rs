//! Property tests of the threading/determinism contract: every parallel
//! scan must be **bitwise-identical** to the serial path for any worker
//! count (`RED_QAOA_THREADS ∈ {1, 2, 4}` is exercised here through the
//! scoped `mathkit::parallel::with_threads` override, which takes priority
//! over the environment variable). The contract itself is documented in
//! `docs/determinism.md`.
//!
//! Coverage spans the primitives (landscape grids, sample MSEs, noisy
//! grids, cold and warm `reduce_pool`), the noisy pipeline, the
//! `red_qaoa::engine` batch front door (PR 5: mixed job batches and the
//! content-hash reduction cache), the four experiment modules migrated
//! onto `reduce_pool` in PR 4 (`dataset_eval`, `noisy_mse`,
//! `convergence`/Figure 20, `landscapes`), and the depth-scheduled job
//! modes introduced with the `CircuitReduction` knob (PR 10).

use graphlib::generators::connected_gnp;
use mathkit::parallel::with_threads;
use mathkit::rng::{derive_seed, seeded};
use proptest::prelude::*;
use qaoa::evaluator::{NoisyTrajectoryEvaluator, StatevectorEvaluator};
use qaoa::landscape::Landscape;
use qsim::statevector::{with_kernel, KernelMode};
use qsim::trajectory::TrajectoryOptions;
use red_qaoa::engine::{
    Engine, Job, JobOutput, LandscapeJob, OptimizeJob, PipelineJob, ReduceJob, ThroughputJob,
};
use red_qaoa::mse::{ideal_sample_mse, noisy_grid_comparison};
use red_qaoa::pipeline::{run_noisy, CircuitReduction, PipelineOptions};
use red_qaoa::reduction::{reduce_pool, ReductionOptions, WarmDecision, WarmStart};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Ideal landscape grids: same bits for 1, 2, and 4 workers.
    #[test]
    fn ideal_landscapes_are_thread_count_invariant(
        seed in 0u64..500,
        nodes in 5usize..9,
        width in 3usize..8,
    ) {
        let graph = connected_gnp(nodes, 0.45, &mut seeded(seed)).unwrap();
        prop_assume!(graph.edge_count() > 0);
        let evaluator = StatevectorEvaluator::new(&graph, 1).unwrap();
        let reference = with_threads(1, || Landscape::evaluate(width, &evaluator));
        for threads in THREAD_COUNTS {
            let scan = with_threads(threads, || Landscape::evaluate(width, &evaluator));
            prop_assert_eq!(bits(&reference.values), bits(&scan.values));
        }
    }

    /// Random-pool MSEs (the Figures 13–16 metric): bitwise-stable across
    /// worker counts for both p = 1 and p = 2 backends.
    #[test]
    fn sample_mses_are_thread_count_invariant(
        seed in 0u64..500,
        nodes in 6usize..10,
        layers in 1usize..3,
    ) {
        let original = connected_gnp(nodes, 0.5, &mut seeded(seed)).unwrap();
        let reduced = connected_gnp(nodes - 1, 0.5, &mut seeded(seed + 1)).unwrap();
        let reference = with_threads(1, || {
            ideal_sample_mse(&original, &reduced, layers, 24, &mut seeded(seed + 2)).unwrap()
        });
        for threads in THREAD_COUNTS {
            let mse = with_threads(threads, || {
                ideal_sample_mse(&original, &reduced, layers, 24, &mut seeded(seed + 2)).unwrap()
            });
            prop_assert_eq!(reference.to_bits(), mse.to_bits());
        }
    }

    /// Noisy landscape grids (per-point substreams + per-trajectory
    /// sub-substreams): the whole three-landscape comparison is
    /// bitwise-stable across worker counts.
    #[test]
    fn noisy_grid_comparisons_are_thread_count_invariant(
        seed in 0u64..200,
        nodes in 6usize..8,
    ) {
        let graph = connected_gnp(nodes, 0.5, &mut seeded(seed)).unwrap();
        let reduced = connected_gnp(nodes - 1, 0.5, &mut seeded(seed + 1)).unwrap();
        let noise = qsim::devices::fake_toronto().noise;
        let run = |threads: usize| {
            with_threads(threads, || {
                noisy_grid_comparison(&graph, &reduced, 3, &noise, 6, &mut seeded(seed + 2))
                    .unwrap()
            })
        };
        let reference = run(1);
        for threads in THREAD_COUNTS {
            let comparison = run(threads);
            prop_assert_eq!(
                bits(&reference.noisy_baseline.values),
                bits(&comparison.noisy_baseline.values)
            );
            prop_assert_eq!(
                bits(&reference.noisy_reduced.values),
                bits(&comparison.noisy_reduced.values)
            );
            prop_assert_eq!(reference.baseline_mse.to_bits(), comparison.baseline_mse.to_bits());
            prop_assert_eq!(reference.reduced_mse.to_bits(), comparison.reduced_mse.to_bits());
        }
    }

    /// Pool reduction (one SA substream per graph, nested substreams per SA
    /// restart): the reduced subgraphs and every reported ratio are
    /// bitwise-identical for 1, 2, and 4 workers.
    #[test]
    fn reduce_pool_is_thread_count_invariant(seed in 0u64..500) {
        let graphs: Vec<_> = (0..5)
            .map(|i| {
                let nodes = 8 + (i % 3);
                connected_gnp(nodes, 0.45, &mut seeded(derive_seed(seed, i as u64))).unwrap()
            })
            .collect();
        let options = ReductionOptions::default();
        let reference = with_threads(1, || reduce_pool(&graphs, &options, seed));
        for threads in THREAD_COUNTS {
            let pool = with_threads(threads, || reduce_pool(&graphs, &options, seed));
            prop_assert_eq!(reference.len(), pool.len());
            for (a, b) in reference.iter().zip(&pool) {
                let a = a.as_ref().expect("connected graphs reduce");
                let b = b.as_ref().expect("connected graphs reduce");
                prop_assert_eq!(&a.subgraph.nodes, &b.subgraph.nodes);
                prop_assert_eq!(a.and_ratio.to_bits(), b.and_ratio.to_bits());
                prop_assert_eq!(a.node_reduction.to_bits(), b.node_reduction.to_bits());
                prop_assert_eq!(a.edge_reduction.to_bits(), b.edge_reduction.to_bits());
            }
        }
    }

    /// Warm-started pool reduction: the deterministic seed resize and the
    /// single warm SA run per candidate size keep `WarmStart::On` exactly as
    /// thread-count invariant as the cold fan-out (graphs above the Auto
    /// cutoff so the warm path actually runs).
    #[test]
    fn warm_started_reduce_pool_is_thread_count_invariant(seed in 0u64..200) {
        let graphs: Vec<_> = (0..4)
            .map(|i| {
                let nodes = 18 + 2 * (i % 2);
                connected_gnp(nodes, 0.35, &mut seeded(derive_seed(seed, i as u64))).unwrap()
            })
            .collect();
        let options = ReductionOptions {
            warm_start: WarmStart::On,
            ..Default::default()
        };
        let reference = with_threads(1, || reduce_pool(&graphs, &options, seed));
        for threads in THREAD_COUNTS {
            let pool = with_threads(threads, || reduce_pool(&graphs, &options, seed));
            for (a, b) in reference.iter().zip(&pool) {
                let a = a.as_ref().expect("connected graphs reduce");
                let b = b.as_ref().expect("connected graphs reduce");
                prop_assert_eq!(&a.subgraph.nodes, &b.subgraph.nodes);
                prop_assert_eq!(a.and_ratio.to_bits(), b.and_ratio.to_bits());
            }
        }
    }

    /// The PR-7 seeding path — degeneracy-ordered first seed plus the
    /// `Measured` keep-or-revert comparison (iteration-count proxies, never
    /// wall-clock) — must also be a pure function of the seed: the subgraph,
    /// its AND ratio, and the *decision itself* are identical for every
    /// worker count. Graphs sit above the warm gate so the measured branch
    /// genuinely executes.
    #[test]
    fn measured_policy_reduce_pool_is_thread_count_invariant(seed in 0u64..200) {
        let graphs: Vec<_> = (0..4)
            .map(|i| {
                let nodes = 16 + 2 * (i % 3);
                connected_gnp(nodes, 0.35, &mut seeded(derive_seed(seed, i as u64))).unwrap()
            })
            .collect();
        let options = ReductionOptions {
            warm_start: WarmStart::Measured,
            ..Default::default()
        };
        let reference = with_threads(1, || reduce_pool(&graphs, &options, seed));
        for threads in THREAD_COUNTS {
            let pool = with_threads(threads, || reduce_pool(&graphs, &options, seed));
            for (a, b) in reference.iter().zip(&pool) {
                let a = a.as_ref().expect("connected graphs reduce");
                let b = b.as_ref().expect("connected graphs reduce");
                prop_assert_eq!(&a.subgraph.nodes, &b.subgraph.nodes);
                prop_assert_eq!(a.and_ratio.to_bits(), b.and_ratio.to_bits());
                prop_assert_eq!(a.warm_decision, b.warm_decision);
                prop_assert!(matches!(
                    a.warm_decision,
                    WarmDecision::MeasuredKept | WarmDecision::MeasuredReverted
                ));
            }
        }
    }

    /// `OptimizeJob` batches (PR 6): full baseline-vs-reduced optimization
    /// sessions — mixed Nelder–Mead and SPSA flavors, the latter drawing its
    /// perturbation directions from the per-job substream — are
    /// bitwise-identical for every worker count. A fresh engine per run
    /// keeps the cache comparison honest.
    #[test]
    fn optimize_job_batches_are_thread_count_invariant(seed in 0u64..100) {
        use qaoa::optimize::OptimizerConfig;
        let graphs: Vec<_> = (0..3)
            .map(|i| {
                let nodes = 8 + (i % 2);
                connected_gnp(nodes, 0.45, &mut seeded(derive_seed(seed, i as u64))).unwrap()
            })
            .collect();
        let jobs = vec![
            Job::Optimize(
                OptimizeJob::new(graphs[0].clone())
                    .with_restarts(2)
                    .with_max_iters(15),
            ),
            Job::Optimize(
                OptimizeJob::new(graphs[1].clone())
                    .with_optimizer(OptimizerConfig::spsa())
                    .with_restarts(2)
                    .with_max_iters(15),
            ),
            // Duplicate graph: the second job must be served the cached
            // (bitwise-identical) reduction regardless of scheduling.
            Job::Optimize(
                OptimizeJob::new(graphs[0].clone())
                    .with_optimizer(OptimizerConfig::spsa())
                    .with_restarts(1)
                    .with_max_iters(10),
            ),
            Job::Optimize(
                OptimizeJob::new(graphs[2].clone())
                    .with_restarts(1)
                    .with_max_iters(10),
            ),
        ];
        let run = |threads: usize| {
            with_threads(threads, || {
                let engine = Engine::builder().build().unwrap();
                engine.run_batch(&jobs, derive_seed(seed, 555))
            })
        };
        let reference = run(1);
        for threads in THREAD_COUNTS {
            let batch = run(threads);
            prop_assert_eq!(reference.len(), batch.len());
            for (a, b) in reference.iter().zip(&batch) {
                let a = a.as_ref().expect("reference job succeeds");
                let b = b.as_ref().expect("batch job succeeds");
                prop_assert_eq!(a, b);
                let (JobOutput::Optimize(x), JobOutput::Optimize(y)) = (a, b) else {
                    panic!("optimize jobs return optimize reports");
                };
                prop_assert_eq!(
                    x.transfer.transferred_value.to_bits(),
                    y.transfer.transferred_value.to_bits()
                );
                prop_assert_eq!(
                    x.transfer.native.best_value.to_bits(),
                    y.transfer.native.best_value.to_bits()
                );
                prop_assert_eq!(x.cost_ratio.to_bits(), y.cost_ratio.to_bits());
            }
        }
    }

    /// The two-level scheduler (PR 8): a mixed batch containing one
    /// oversized `LandscapeJob` — whose estimated cost dwarfs its siblings,
    /// so at 2 and 4 workers it is routed to the exclusive lane where its
    /// inner grid scan parallelizes — is bitwise-identical across worker
    /// counts. Lane placement differs per thread count by design; outputs
    /// must not. A fresh engine per run keeps the cache comparison honest.
    #[test]
    fn two_level_scheduled_batches_are_thread_count_invariant(seed in 0u64..100) {
        let graphs: Vec<_> = (0..3)
            .map(|i| {
                let nodes = 8 + (i % 2);
                connected_gnp(nodes, 0.45, &mut seeded(derive_seed(seed, i as u64))).unwrap()
            })
            .collect();
        let jobs = vec![
            Job::Reduce(ReduceJob::new(graphs[0].clone())),
            // Cost 144 ≫ every sibling (~9–16): the scheduler's outlier.
            Job::Landscape(LandscapeJob::new(graphs[1].clone(), 12)),
            Job::Throughput(ThroughputJob::new(graphs[2].clone(), 27, 1)),
            Job::Landscape(LandscapeJob::new(graphs[0].clone(), 3).reduced()),
            Job::Reduce(ReduceJob::new(graphs[1].clone())), // shares the big job's graph
        ];
        let run = |threads: usize| {
            with_threads(threads, || {
                let engine = Engine::builder().build().unwrap();
                engine.run_batch(&jobs, derive_seed(seed, 777))
            })
        };
        let reference = run(1);
        for threads in THREAD_COUNTS {
            let batch = run(threads);
            prop_assert_eq!(reference.len(), batch.len());
            for (a, b) in reference.iter().zip(&batch) {
                let a = a.as_ref().expect("reference job succeeds");
                let b = b.as_ref().expect("batch job succeeds");
                // PartialEq first (structural drift), then bitwise spot
                // checks on the floating-point payloads.
                prop_assert_eq!(a, b);
                match (a, b) {
                    (JobOutput::Landscape(x), JobOutput::Landscape(y)) => {
                        prop_assert_eq!(bits(&x.values), bits(&y.values));
                    }
                    (JobOutput::Reduced(x), JobOutput::Reduced(y)) => {
                        prop_assert_eq!(x.and_ratio.to_bits(), y.and_ratio.to_bits());
                    }
                    (JobOutput::Throughput(x), JobOutput::Throughput(y)) => {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                    _ => {}
                }
            }
        }
    }

    /// Kernel-mode invariance (PR 9): `RED_QAOA_KERNEL` is an operational
    /// knob exactly like `RED_QAOA_THREADS` — a mixed `LandscapeJob` /
    /// `OptimizeJob` batch must be bitwise-identical across every
    /// combination of kernel mode ∈ {scalar, vectorized} and worker count
    /// ∈ {1, 2, 4}. This is the end-to-end proof that the vectorized
    /// statevector kernels cannot change any engine result.
    #[test]
    fn job_batches_are_kernel_mode_invariant(seed in 0u64..100) {
        let graphs: Vec<_> = (0..2)
            .map(|i| {
                let nodes = 8 + (i % 2);
                connected_gnp(nodes, 0.45, &mut seeded(derive_seed(seed, i as u64))).unwrap()
            })
            .collect();
        let jobs = vec![
            Job::Landscape(LandscapeJob::new(graphs[0].clone(), 6)),
            Job::Optimize(
                OptimizeJob::new(graphs[1].clone())
                    .with_restarts(2)
                    .with_max_iters(12),
            ),
            Job::Landscape(LandscapeJob::new(graphs[1].clone(), 4).reduced()),
        ];
        let run = |mode: KernelMode, threads: usize| {
            with_kernel(mode, || {
                with_threads(threads, || {
                    let engine = Engine::builder().build().unwrap();
                    engine.run_batch(&jobs, derive_seed(seed, 999))
                })
            })
        };
        let reference = run(KernelMode::Scalar, 1);
        for mode in [KernelMode::Scalar, KernelMode::Vectorized] {
            for threads in THREAD_COUNTS {
                let batch = run(mode, threads);
                prop_assert_eq!(reference.len(), batch.len());
                for (a, b) in reference.iter().zip(&batch) {
                    let a = a.as_ref().expect("reference job succeeds");
                    let b = b.as_ref().expect("batch job succeeds");
                    prop_assert_eq!(a, b);
                    match (a, b) {
                        (JobOutput::Landscape(x), JobOutput::Landscape(y)) => {
                            prop_assert_eq!(bits(&x.values), bits(&y.values));
                        }
                        (JobOutput::Optimize(x), JobOutput::Optimize(y)) => {
                            prop_assert_eq!(
                                x.transfer.transferred_value.to_bits(),
                                y.transfer.transferred_value.to_bits()
                            );
                            prop_assert_eq!(x.cost_ratio.to_bits(), y.cost_ratio.to_bits());
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Depth-scheduled batches (PR 10): a mixed batch in which every job
    /// routes through the depth-reduction subsystem — a depth-only
    /// landscape, a node+depth landscape on the cached reduction, a noisy
    /// node+depth pipeline, and a node+depth optimize session — must be
    /// bitwise-identical across every combination of kernel mode ∈
    /// {scalar, vectorized} and worker count ∈ {1, 2, 4}. The greedy
    /// interaction scheduler is RNG-free (lowest-index tie-breaks
    /// throughout), so composing it with node reduction must add exactly
    /// zero nondeterminism on top of the PR-9 contract.
    #[test]
    fn depth_scheduled_batches_are_thread_and_kernel_invariant(seed in 0u64..100) {
        let graphs: Vec<_> = (0..2)
            .map(|i| {
                let nodes = 8 + (i % 2);
                connected_gnp(nodes, 0.45, &mut seeded(derive_seed(seed, i as u64))).unwrap()
            })
            .collect();
        let pipeline_options = PipelineOptions {
            layers: 1,
            reduction: ReductionOptions::default(),
            optimize: qaoa::optimize::OptimizeOptions {
                restarts: 1,
                max_iters: 10,
            },
            refine_iters: 5,
            circuit: CircuitReduction::NodeAndDepth,
        };
        let jobs = vec![
            Job::Landscape(
                LandscapeJob::new(graphs[0].clone(), 4).with_circuit(CircuitReduction::Depth),
            ),
            Job::Landscape(
                LandscapeJob::new(graphs[1].clone(), 3)
                    .reduced()
                    .with_circuit(CircuitReduction::NodeAndDepth),
            ),
            Job::Pipeline(
                PipelineJob::new(graphs[0].clone())
                    .with_options(pipeline_options)
                    .noisy(4),
            ),
            Job::Optimize(
                OptimizeJob::new(graphs[1].clone())
                    .with_circuit(CircuitReduction::NodeAndDepth)
                    .with_restarts(1)
                    .with_max_iters(8),
            ),
        ];
        let run = |mode: KernelMode, threads: usize| {
            with_kernel(mode, || {
                with_threads(threads, || {
                    let engine = Engine::builder()
                        .noise(qsim::devices::fake_toronto().noise)
                        .build()
                        .unwrap();
                    engine.run_batch(&jobs, derive_seed(seed, 1010))
                })
            })
        };
        let reference = run(KernelMode::Scalar, 1);
        for mode in [KernelMode::Scalar, KernelMode::Vectorized] {
            for threads in THREAD_COUNTS {
                let batch = run(mode, threads);
                prop_assert_eq!(reference.len(), batch.len());
                for (a, b) in reference.iter().zip(&batch) {
                    let a = a.as_ref().expect("reference job succeeds");
                    let b = b.as_ref().expect("batch job succeeds");
                    // PartialEq first (structural drift, including the
                    // attached DepthMetrics), then bitwise spot checks on
                    // the floating-point payloads.
                    prop_assert_eq!(a, b);
                    match (a, b) {
                        (JobOutput::Landscape(x), JobOutput::Landscape(y)) => {
                            prop_assert_eq!(bits(&x.values), bits(&y.values));
                        }
                        (JobOutput::NoisyPipeline(x), JobOutput::NoisyPipeline(y)) => {
                            prop_assert!(x.depth.is_some(), "node+depth pipeline reports metrics");
                            prop_assert_eq!(
                                x.red_qaoa_ideal_value.to_bits(),
                                y.red_qaoa_ideal_value.to_bits()
                            );
                            prop_assert_eq!(
                                x.baseline_ideal_value.to_bits(),
                                y.baseline_ideal_value.to_bits()
                            );
                        }
                        (JobOutput::Optimize(x), JobOutput::Optimize(y)) => {
                            prop_assert!(x.depth.is_some(), "node+depth session reports metrics");
                            prop_assert_eq!(
                                x.transfer.transferred_value.to_bits(),
                                y.transfer.transferred_value.to_bits()
                            );
                            prop_assert_eq!(x.cost_ratio.to_bits(), y.cost_ratio.to_bits());
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// A noisy landscape scan evaluated point-by-point with a fresh scratch
    /// per point equals the scan through `Landscape::evaluate` — the
    /// per-point substream really is a pure function of the index.
    #[test]
    fn per_point_noisy_scan_matches_manual_point_evaluation(seed in 0u64..200) {
        use qaoa::evaluator::EnergyEvaluator;
        let graph = connected_gnp(6, 0.5, &mut seeded(seed)).unwrap();
        let instance = qaoa::expectation::QaoaInstance::new(&graph, 1).unwrap();
        let noise = qsim::devices::fake_toronto().noise;
        let evaluator = NoisyTrajectoryEvaluator::per_point(
            instance,
            noise,
            TrajectoryOptions { trajectories: 4 },
            seed,
        );
        let scan = with_threads(2, || Landscape::evaluate(3, &evaluator));
        for (idx, &value) in scan.values.iter().enumerate() {
            let params = qaoa::params::QaoaParams::new(
                vec![scan.gammas[idx / 3]],
                vec![scan.betas[idx % 3]],
            )
            .unwrap();
            let point = evaluator.energy(&mut evaluator.scratch(), idx as u64, &params);
            prop_assert_eq!(value.to_bits(), point.to_bits());
        }
    }
}

/// The end-to-end noisy pipeline (sequential noise streams inside the
/// optimizer, parallel primitives elsewhere) produces identical outcomes for
/// every worker count.
#[test]
fn noisy_pipeline_is_thread_count_invariant() {
    let graph = connected_gnp(8, 0.45, &mut seeded(11)).unwrap();
    let options = PipelineOptions {
        layers: 1,
        reduction: ReductionOptions::default(),
        optimize: qaoa::optimize::OptimizeOptions {
            restarts: 2,
            max_iters: 25,
        },
        refine_iters: 10,
        circuit: CircuitReduction::None,
    };
    let noise = qsim::devices::fake_toronto().noise;
    let run = |threads: usize| {
        with_threads(threads, || {
            run_noisy(&graph, &options, &noise, 8, &mut seeded(12)).unwrap()
        })
    };
    let reference = run(1);
    for threads in [2usize, 4] {
        let outcome = run(threads);
        assert_eq!(
            reference.red_qaoa_ideal_value.to_bits(),
            outcome.red_qaoa_ideal_value.to_bits(),
            "threads {threads}"
        );
        assert_eq!(
            reference.baseline_ideal_value.to_bits(),
            outcome.baseline_ideal_value.to_bits(),
            "threads {threads}"
        );
        assert_eq!(reference.reduction.graph(), outcome.reduction.graph());
    }
}

/// `Engine::run_batch` (PR 5): a mixed batch — including a duplicated
/// reduce job that exercises the content-hash cache — produces
/// bitwise-identical outputs for every worker count. The cache is the subtle
/// part: job completion *order* differs across thread counts, so a cached
/// reduction must be a pure function of content, never of which job computed
/// it first. A fresh engine per run keeps the comparison honest.
#[test]
fn engine_run_batch_is_thread_count_invariant() {
    let graphs: Vec<_> = (0..3)
        .map(|i| connected_gnp(9 + i, 0.45, &mut seeded(derive_seed(33, i as u64))).unwrap())
        .collect();
    let pipeline_options = PipelineOptions {
        layers: 1,
        reduction: ReductionOptions::default(),
        optimize: qaoa::optimize::OptimizeOptions {
            restarts: 1,
            max_iters: 10,
        },
        refine_iters: 5,
        circuit: CircuitReduction::None,
    };
    let jobs = vec![
        Job::Reduce(ReduceJob::new(graphs[0].clone())),
        Job::Throughput(ThroughputJob::new(graphs[1].clone(), 27, 1)),
        Job::Landscape(LandscapeJob::new(graphs[2].clone(), 4)),
        Job::Reduce(ReduceJob::new(graphs[0].clone())), // duplicate: cache path
        Job::Pipeline(PipelineJob::new(graphs[0].clone()).with_options(pipeline_options)),
        Job::Landscape(LandscapeJob::new(graphs[2].clone(), 4).reduced()),
    ];
    let run = |threads: usize| {
        with_threads(threads, || {
            let engine = Engine::builder().build().unwrap();
            engine.run_batch(&jobs, 99)
        })
    };
    let reference = run(1);
    for threads in THREAD_COUNTS {
        let batch = run(threads);
        assert_eq!(reference.len(), batch.len());
        for (job_index, (a, b)) in reference.iter().zip(&batch).enumerate() {
            let a = a.as_ref().expect("reference job succeeds");
            let b = b.as_ref().expect("batch job succeeds");
            // PartialEq first (catches structural drift), then bitwise spot
            // checks on the floating-point payloads.
            assert_eq!(a, b, "job {job_index} diverged at {threads} threads");
            match (a, b) {
                (JobOutput::Reduced(x), JobOutput::Reduced(y)) => {
                    assert_eq!(x.and_ratio.to_bits(), y.and_ratio.to_bits());
                }
                (JobOutput::Landscape(x), JobOutput::Landscape(y)) => {
                    assert_eq!(bits(&x.values), bits(&y.values));
                }
                (JobOutput::Throughput(x), JobOutput::Throughput(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                (JobOutput::Pipeline(x), JobOutput::Pipeline(y)) => {
                    assert_eq!(x.final_value.to_bits(), y.final_value.to_bits());
                    assert_eq!(x.baseline_value.to_bits(), y.baseline_value.to_bits());
                }
                _ => {}
            }
        }
    }
}

/// The engine's `reduce_pool` delegation really is the low-level pool:
/// identical substreams, identical bits, for every worker count.
#[test]
fn engine_reduce_pool_delegation_is_thread_count_invariant() {
    let graphs: Vec<_> = (0..4)
        .map(|i| connected_gnp(10, 0.4, &mut seeded(derive_seed(44, i as u64))).unwrap())
        .collect();
    let reference = with_threads(1, || reduce_pool(&graphs, &ReductionOptions::default(), 7));
    for threads in THREAD_COUNTS {
        let engine = Engine::builder().build().unwrap();
        let pool = with_threads(threads, || engine.reduce_pool(&graphs, 7));
        assert_eq!(reference, pool, "threads {threads}");
    }
}

// ---------------------------------------------------------------------------
// The four experiment modules migrated onto `reduce_pool` (PR 4):
// dataset_eval, noisy_mse, convergence (Figure 20), and landscapes. Each
// must produce bitwise-identical outputs for every worker count. These run
// scaled-down configurations once per thread count (plain tests rather than
// proptests: one experiment run is orders of magnitude heavier than the
// primitives above).
// ---------------------------------------------------------------------------

#[test]
fn dataset_eval_is_thread_count_invariant() {
    let config = experiments::dataset_eval::DatasetEvalConfig {
        graphs_per_dataset: 3,
        layers: vec![1],
        parameter_sets: 12,
        ..Default::default()
    };
    let reference = with_threads(1, || {
        experiments::dataset_eval::run_small_datasets(&config).unwrap()
    });
    for threads in [2usize, 4] {
        let rows = with_threads(threads, || {
            experiments::dataset_eval::run_small_datasets(&config).unwrap()
        });
        assert_eq!(reference.len(), rows.len());
        for (a, b) in reference.iter().zip(&rows) {
            assert_eq!(a.dataset, b.dataset, "threads {threads}");
            assert_eq!(a.graphs, b.graphs, "threads {threads}");
            assert_eq!(
                a.node_reduction.to_bits(),
                b.node_reduction.to_bits(),
                "threads {threads}"
            );
            assert_eq!(
                a.edge_reduction.to_bits(),
                b.edge_reduction.to_bits(),
                "threads {threads}"
            );
            assert_eq!(bits(&a.mse_per_layer), bits(&b.mse_per_layer));
        }
    }
}

#[test]
fn noisy_mse_size_sweep_is_thread_count_invariant() {
    let config = experiments::noisy_mse::NoisyMseConfig {
        node_counts: vec![7, 8],
        width: 3,
        trajectories: 4,
        ..Default::default()
    };
    let reference = with_threads(1, || experiments::noisy_mse::run_fig10(&config).unwrap());
    for threads in [2usize, 4] {
        let rows = with_threads(threads, || {
            experiments::noisy_mse::run_fig10(&config).unwrap()
        });
        assert_eq!(reference.len(), rows.len());
        for (a, b) in reference.iter().zip(&rows) {
            assert_eq!(a.nodes, b.nodes, "threads {threads}");
            assert_eq!(a.reduced_nodes, b.reduced_nodes, "threads {threads}");
            assert_eq!(
                a.baseline_mse.to_bits(),
                b.baseline_mse.to_bits(),
                "threads {threads}"
            );
            assert_eq!(
                a.red_qaoa_mse.to_bits(),
                b.red_qaoa_mse.to_bits(),
                "threads {threads}"
            );
        }
    }
}

#[test]
fn fig20_convergence_is_thread_count_invariant() {
    let config = experiments::convergence::Fig20Config {
        nodes: 7,
        restarts: 1,
        iterations: 8,
        trajectories: 4,
        ..Default::default()
    };
    let reference = with_threads(1, || experiments::convergence::run_fig20(&config).unwrap());
    for threads in [2usize, 4] {
        let curves = with_threads(threads, || {
            experiments::convergence::run_fig20(&config).unwrap()
        });
        assert_eq!(
            reference.reduced_nodes, curves.reduced_nodes,
            "threads {threads}"
        );
        assert_eq!(bits(&reference.baseline), bits(&curves.baseline));
        assert_eq!(bits(&reference.red_qaoa), bits(&curves.red_qaoa));
    }
}

#[test]
fn device_landscapes_are_thread_count_invariant() {
    let config = experiments::landscapes::LandscapeConfig {
        nodes: 8,
        width: 3,
        trajectories: 4,
        ..Default::default()
    };
    let device = qsim::devices::fake_toronto();
    let reference = with_threads(1, || {
        experiments::landscapes::run_device_landscapes(&config, &device).unwrap()
    });
    for threads in [2usize, 4] {
        let comparison = with_threads(threads, || {
            experiments::landscapes::run_device_landscapes(&config, &device).unwrap()
        });
        assert_eq!(
            bits(&reference.noisy_baseline.values),
            bits(&comparison.noisy_baseline.values)
        );
        assert_eq!(
            bits(&reference.noisy_reduced.values),
            bits(&comparison.noisy_reduced.values)
        );
        assert_eq!(
            reference.baseline_mse.to_bits(),
            comparison.baseline_mse.to_bits(),
            "threads {threads}"
        );
        assert_eq!(
            reference.reduced_mse.to_bits(),
            comparison.reduced_mse.to_bits(),
            "threads {threads}"
        );
    }
}
