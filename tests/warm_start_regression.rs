//! Regression tests of the warm-started reduction search (PR 4).
//!
//! Two guarantees are pinned here:
//!
//! 1. **Quality** — on a fixed seed set, warm-started and cold-started
//!    `reduce` both meet the AND-ratio threshold, and the warm search keeps
//!    (or improves) the achieved ratio while reducing at least as far.
//! 2. **Compatibility** — `WarmStart::Off` reproduces the pre-warm-start
//!    implementation **bit for bit**. The expected values below were
//!    recorded by running the PR-3 `reduce` (which had no warm-start code
//!    at all) on these exact seeds; if this test ever fails, the cold path
//!    changed behaviour, which is a breaking change to the determinism
//!    contract (`docs/determinism.md`), not a tuning tweak.

use graphlib::generators::connected_gnp;
use mathkit::rng::seeded;
use red_qaoa::annealing::resize_selection;
use red_qaoa::reduction::{
    reduce, ReductionOptions, WarmDecision, WarmStart, DEFAULT_AND_RATIO_THRESHOLD,
    WARM_START_AUTO_MIN_NODES,
};

/// The fixed seed set of the regression: 18-node graphs (above the
/// `WarmStart::Auto` cutoff, so `Auto` genuinely warm-starts them).
const SEEDS: [u64; 4] = [101, 202, 303, 404];

fn graph_for(seed: u64) -> graphlib::Graph {
    connected_gnp(18, 0.35, &mut seeded(seed)).unwrap()
}

fn reduce_with(seed: u64, warm_start: WarmStart) -> red_qaoa::reduction::ReducedGraph {
    let options = ReductionOptions {
        warm_start,
        ..Default::default()
    };
    reduce(&graph_for(seed), &options, &mut seeded(seed + 1)).unwrap()
}

#[test]
fn warm_and_cold_reductions_both_meet_the_and_threshold() {
    for seed in SEEDS {
        let cold = reduce_with(seed, WarmStart::Off);
        let warm = reduce_with(seed, WarmStart::On);
        assert!(
            cold.and_ratio >= DEFAULT_AND_RATIO_THRESHOLD - 1e-9,
            "seed {seed}: cold ratio {}",
            cold.and_ratio
        );
        assert!(
            warm.and_ratio >= DEFAULT_AND_RATIO_THRESHOLD - 1e-9,
            "seed {seed}: warm ratio {}",
            warm.and_ratio
        );
        // The warm search must not trade reduction depth for its speed: it
        // reduces at least as far as the cold search on every fixed seed.
        assert!(
            warm.graph().node_count() <= cold.graph().node_count(),
            "seed {seed}: warm kept {} nodes vs cold {}",
            warm.graph().node_count(),
            cold.graph().node_count()
        );
    }
}

#[test]
fn warm_start_off_reproduces_the_pre_warm_start_outputs_bitwise() {
    // (sorted subgraph nodes, and_ratio bits, node_reduction bits) recorded
    // from the PR-3 implementation.
    let expected: [(&[usize], u64, u64); 4] = [
        (
            &[0, 1, 2, 4, 5, 6, 7, 9, 10, 11, 14, 16],
            0x3fea0ea0ea0ea0ea,
            0x3fd5555555555556,
        ),
        (
            &[1, 3, 4, 5, 6, 7, 8, 9, 12, 13, 15, 16],
            0x3fee762762762763,
            0x3fd5555555555556,
        ),
        (
            &[2, 4, 5, 6, 7, 8, 9, 12, 14, 15, 16, 17],
            0x3fed555555555555,
            0x3fd5555555555556,
        ),
        (
            &[0, 2, 4, 5, 6, 9, 10, 11, 12, 13, 16, 17],
            0x3feea3677d46cefa,
            0x3fd5555555555556,
        ),
    ];
    for (seed, (nodes, ratio_bits, reduction_bits)) in SEEDS.into_iter().zip(expected) {
        let cold = reduce_with(seed, WarmStart::Off);
        let mut sorted = cold.subgraph.nodes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, nodes, "seed {seed}: subgraph diverged");
        assert_eq!(
            cold.and_ratio.to_bits(),
            ratio_bits,
            "seed {seed}: AND ratio diverged"
        );
        assert_eq!(
            cold.node_reduction.to_bits(),
            reduction_bits,
            "seed {seed}: node reduction diverged"
        );
    }
}

#[test]
fn auto_policy_warm_starts_large_graphs_and_cold_starts_small_ones() {
    assert!(!WarmStart::Auto.enabled_for(WARM_START_AUTO_MIN_NODES - 1));
    assert!(WarmStart::Auto.enabled_for(WARM_START_AUTO_MIN_NODES));
    let with_policy = |warm_start| ReductionOptions {
        warm_start,
        ..Default::default()
    };
    // Below the cutoff, Auto and Off are the same search, bit for bit.
    let mut rng_a = seeded(7);
    let mut rng_b = seeded(7);
    let graph = connected_gnp(12, 0.4, &mut seeded(1)).unwrap();
    let auto = reduce(&graph, &with_policy(WarmStart::Auto), &mut rng_a).unwrap();
    let off = reduce(&graph, &with_policy(WarmStart::Off), &mut rng_b).unwrap();
    assert_eq!(auto, off);
    assert_eq!(auto.warm_decision, WarmDecision::Cold);
    // At or above it, Auto takes the warm path (same outputs as On).
    let large = graph_for(SEEDS[0]);
    let mut rng_auto = seeded(9);
    let mut rng_on = seeded(9);
    let auto = reduce(&large, &with_policy(WarmStart::Auto), &mut rng_auto).unwrap();
    let on = reduce(&large, &with_policy(WarmStart::On), &mut rng_on).unwrap();
    assert_eq!(auto, on);
    assert_eq!(auto.warm_decision, WarmDecision::Warm);
    // The gate is configurable: raising it above the graph size turns the
    // same Auto search cold.
    let gated = ReductionOptions::builder()
        .warm_start(WarmStart::Auto)
        .warm_auto_min_nodes(large.node_count() + 1)
        .build()
        .unwrap();
    assert!(!gated.warm_enabled_for(large.node_count()));
    let mut rng_gated = seeded(9);
    let cold = reduce(&large, &gated, &mut rng_gated).unwrap();
    assert_eq!(cold.warm_decision, WarmDecision::Cold);
}

#[test]
fn measured_default_decides_and_stays_deterministic() {
    // The default policy is Measured: on the pinned 18-node seeds it must
    // reach a decision (kept or reverted — the second candidate size is
    // always visited here), meet the AND threshold, and be a pure function
    // of the seed.
    for seed in SEEDS {
        let options = ReductionOptions::default();
        assert_eq!(options.warm_start, WarmStart::Measured);
        let first = reduce(&graph_for(seed), &options, &mut seeded(seed + 1)).unwrap();
        let second = reduce(&graph_for(seed), &options, &mut seeded(seed + 1)).unwrap();
        assert_eq!(
            first, second,
            "seed {seed}: Measured reduce not deterministic"
        );
        assert!(
            matches!(
                first.warm_decision,
                WarmDecision::MeasuredKept | WarmDecision::MeasuredReverted
            ),
            "seed {seed}: decision {:?}",
            first.warm_decision
        );
        assert!(
            first.and_ratio >= DEFAULT_AND_RATIO_THRESHOLD - 1e-9,
            "seed {seed}: measured ratio {}",
            first.and_ratio
        );
    }
}

#[test]
fn resize_selection_shrinks_and_grows_deterministically() {
    let graph = connected_gnp(16, 0.35, &mut seeded(21)).unwrap();
    let seed: Vec<usize> = (0..12).collect();
    for k in [8usize, 12, 15] {
        let resized = resize_selection(&graph, &seed, k).unwrap();
        assert_eq!(resized.len(), k);
        let mut sorted = resized.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "resize produced a duplicate node");
        // Pure function of (graph, seed, k): a second call is identical.
        assert_eq!(resized, resize_selection(&graph, &seed, k).unwrap());
    }
    // Shrinking a connected seed keeps it connected (cut vertices are
    // skipped by the greedy drop).
    let shrunk = resize_selection(&graph, &seed, 6).unwrap();
    let sub = graphlib::subgraph::induced_subgraph(&graph, &shrunk).unwrap();
    assert!(graphlib::traversal::is_connected(&sub.graph));
}
