//! Steady-state allocation tests for the hot evaluation paths.
//!
//! The workspace-buffer APIs (`expectation_with`, `probabilities_into`,
//! `sample_counts_with`, `apply_readout_confusion_in_place`) promise that
//! after the first call of a given size *no further allocation happens*.
//! That promise is what makes landscape scans allocator-quiet; this file
//! enforces it with a counting `#[global_allocator]` so an accidental
//! per-call `Vec` rebuild (the bug class PR 9 removed) fails a test
//! instead of quietly costing 2^n allocations per grid point.
//!
//! The counter is **per-thread** (a `const`-initialized thread-local `Cell`,
//! which never allocates itself): the global allocator hook runs on whatever
//! thread allocates, and libtest's main thread allocates lazily at
//! unpredictable times while it waits for test events — a process-global
//! counter would flake whenever that lands inside a measured window.
//! Everything still runs inside one `#[test]` function so the windows stay
//! strictly ordered.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use graphlib::generators::connected_gnp;
use mathkit::rng::seeded;
use qaoa::expectation::QaoaInstance;
use qaoa::params::QaoaParams;
use qsim::density::apply_readout_confusion_in_place;
use qsim::noise::{NoiseModel, ReadoutError};
use qsim::statevector::{SampleScratch, StateVector, StatevectorWorkspace};

struct CountingAllocator;

thread_local! {
    /// Allocations performed by *this* thread since it started.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// Counts one allocation on the calling thread.
fn count() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many heap allocations this thread performed.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn hot_paths_allocate_nothing_in_steady_state() {
    let graph = connected_gnp(8, 0.45, &mut seeded(5)).unwrap();
    let instance = QaoaInstance::new(&graph, 2).unwrap();
    let params = QaoaParams::new(vec![0.7, 0.3], vec![0.4, 0.2]).unwrap();

    // --- expectation_with through a reused workspace ---------------------
    let mut workspace = StatevectorWorkspace::new();
    for _ in 0..2 {
        instance.expectation_with(&mut workspace, &params); // warm the buffers
    }
    let allocs = allocations_during(|| {
        for _ in 0..16 {
            instance.expectation_with(&mut workspace, &params);
        }
    });
    assert_eq!(allocs, 0, "expectation_with allocated in steady state");

    // --- probabilities_into through the same workspace -------------------
    let mut probs = Vec::new();
    instance.probabilities_into(&mut workspace, &params, &mut probs); // warm
    let allocs = allocations_during(|| {
        for _ in 0..16 {
            instance.probabilities_into(&mut workspace, &params, &mut probs);
        }
    });
    assert_eq!(allocs, 0, "probabilities_into allocated in steady state");

    // --- measurement sampling through SampleScratch ----------------------
    let sv = StateVector::uniform_superposition(8);
    let mut scratch = SampleScratch::default();
    let mut rng = seeded(11);
    sv.sample_counts_with(256, &mut rng, &mut scratch); // warm
    let allocs = allocations_during(|| {
        for _ in 0..16 {
            sv.sample_counts_with(256, &mut rng, &mut scratch);
        }
    });
    assert_eq!(allocs, 0, "sample_counts_with allocated in steady state");

    // --- readout confusion in place --------------------------------------
    let noise = NoiseModel::new(
        0.002,
        0.02,
        ReadoutError::new(0.02, 0.03),
        100.0,
        90.0,
        35.0,
        300.0,
    );
    let mut dist = sv.probabilities();
    let mut confusion_scratch = Vec::new();
    apply_readout_confusion_in_place(&mut dist, &mut confusion_scratch, 8, &noise); // warm
    let allocs = allocations_during(|| {
        for _ in 0..16 {
            apply_readout_confusion_in_place(&mut dist, &mut confusion_scratch, 8, &noise);
        }
    });
    assert_eq!(
        allocs, 0,
        "apply_readout_confusion_in_place allocated in steady state"
    );

    // Sanity check that the counter actually counts: a fresh Vec push must
    // register at least one allocation, or every assertion above is vacuous.
    let allocs = allocations_during(|| {
        let v = vec![ALLOCATIONS.with(Cell::get) as u64];
        std::hint::black_box(&v);
    });
    assert!(allocs >= 1, "counting allocator is not counting");
}
